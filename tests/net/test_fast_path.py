"""Fast-path equivalence: bulk coalescing must be invisible.

The network layer coalesces runs of frames on an uncontended medium
into single closed-form holds (``Network._coalesced_frames``) and the
stream media route through shared helpers.  These tests pin the whole
point of that design: simulated timestamps, returned durations,
``NetworkStats`` and tracer records are **bit-identical** (``==``, not
``approx``) to the original per-frame / inline implementations, in
uncontended *and* contended runs, with and without seeded backoff.

Each reference implementation below is a frozen copy of the pre-fast-
path ``transfer`` body, driven against a fresh instance of the same
medium class.
"""

import random

import pytest

from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.net.atm import _CELL_BYTES, cells_for
from repro.sim import Environment, RandomStreams, Tracer

# ----------------------------------------------------------------------
# Frozen pre-fast-path reference implementations
# ----------------------------------------------------------------------


def ethernet_reference(net, src, dst, nbytes):
    """The original per-frame claim/backoff/transmit loop."""
    net.validate_endpoints(src, dst)
    start = net.env.now
    wire_total = 0
    busy_total = 0.0
    for payload in net.frame_format.frame_payloads(nbytes):
        with net._medium.request() as claim:
            yield claim
            if net._backoff_rng is not None and net._medium.queue_length > 0:
                yield net.env.timeout(net._backoff_rng.uniform(0.0, net._max_backoff))
            frame_time = net.frame_seconds(payload)
            yield net.env.timeout(frame_time)
        wire_total += net.frame_format.wire_bytes(payload)
        busy_total += frame_time
    yield net.env.timeout(net.propagation_seconds)
    net._record(src, dst, nbytes, wire_total, busy_total)
    return net.env.now - start


def fddi_reference(net, src, dst, nbytes):
    """The original inline token capture (per-frame wire-byte sum)."""
    net.validate_endpoints(src, dst)
    start = net.env.now
    wire_total = sum(net.frame_format.wire_bytes(p)
                     for p in net.frame_format.frame_payloads(nbytes))
    busy_total = wire_total * 8.0 / net.rate_bps
    with net._token.request() as claim:
        yield claim
        yield net.env.timeout(net.token_latency_seconds)
        yield net.env.timeout(busy_total)
    yield net.env.timeout(net.propagation_seconds)
    net._record(src, dst, nbytes, wire_total, busy_total)
    return net.env.now - start


def atm_reference(net, src, dst, nbytes):
    """The original inline port-pair stream."""
    net.validate_endpoints(src, dst)
    start = net.env.now
    stream_time = net.cell_stream_seconds(nbytes)
    out_claim = net._out_ports[src].request()
    yield out_claim
    in_claim = net._in_ports[dst].request()
    yield in_claim
    try:
        yield net.env.timeout(stream_time)
    finally:
        net._out_ports[src].release(out_claim)
        net._in_ports[dst].release(in_claim)
    yield net.env.timeout(net.switch_latency_seconds + net.propagation_seconds)
    wire_total = cells_for(nbytes) * _CELL_BYTES
    net._record(src, dst, nbytes, wire_total, stream_time)
    return net.env.now - start


def crossbar_reference(net, src, dst, nbytes):
    """The original inline crossbar stream (per-frame wire-byte sum)."""
    net.validate_endpoints(src, dst)
    start = net.env.now
    wire_total = sum(net.frame_format.wire_bytes(p)
                     for p in net.frame_format.frame_payloads(nbytes))
    stream_time = wire_total * 8.0 / net.rate_bps
    out_claim = net._out_ports[src].request()
    yield out_claim
    in_claim = net._in_ports[dst].request()
    yield in_claim
    try:
        yield net.env.timeout(stream_time)
    finally:
        net._out_ports[src].release(out_claim)
        net._in_ports[dst].release(in_claim)
    yield net.env.timeout(net.switch_latency_seconds + net.propagation_seconds)
    net._record(src, dst, nbytes, wire_total, stream_time)
    return net.env.now - start


def current_transfer(net, src, dst, nbytes):
    return net.transfer(src, dst, nbytes)


MEDIA = [
    pytest.param(Ethernet, ethernet_reference, id="ethernet"),
    pytest.param(FddiRing, fddi_reference, id="fddi"),
    pytest.param(AtmLan, atm_reference, id="atm-lan"),
    pytest.param(AtmWan, atm_reference, id="atm-wan"),
    pytest.param(AllnodeSwitch, crossbar_reference, id="allnode"),
]


# ----------------------------------------------------------------------
# Scenario harness: run identical traffic through both implementations
# ----------------------------------------------------------------------


def run_scenario(factory, transfer_fn, senders, **net_kwargs):
    """Run ``senders`` = [(name, src, dst, nbytes, start_delay)] through
    a fresh medium; return every observable of the run."""
    env = Environment()
    tracer = Tracer()
    net = factory(env, 4, tracer=tracer, **net_kwargs)
    completions = {}

    def sender(name, src, dst, nbytes, delay):
        if delay:
            yield env.timeout(delay)
        duration = yield from transfer_fn(net, src, dst, nbytes)
        completions[name] = (env.now, duration)

    for spec in senders:
        env.process(sender(*spec))
    env.run()
    stats = (net.stats.messages, net.stats.payload_bytes,
             net.stats.wire_bytes, net.stats.busy_seconds)
    trace = [(r.time, r.kind, sorted(r.fields.items())) for r in tracer]
    return completions, stats, trace


def assert_identical(factory, reference, senders, **net_kwargs):
    expected = run_scenario(factory, reference, senders, **net_kwargs)
    actual = run_scenario(factory, current_transfer, senders, **net_kwargs)
    assert actual == expected  # timestamps, durations, stats, trace — all of it


UNCONTENDED_SIZES = [0, 1, 47, 48, 1460, 1461, 4096, 65536, 1_000_000]


class TestUncontendedEquivalence:
    @pytest.mark.parametrize("factory,reference", MEDIA)
    @pytest.mark.parametrize("nbytes", UNCONTENDED_SIZES)
    def test_single_sender(self, factory, reference, nbytes):
        assert_identical(factory, reference, [("a", 0, 1, nbytes, 0.0)])

    @pytest.mark.parametrize("nbytes", [1460, 20_000])
    def test_back_to_back_messages_share_no_state(self, nbytes):
        """Two sequential messages from one host coalesce independently."""
        senders = [("a", 0, 1, nbytes, 0.0), ("b", 0, 1, nbytes, 0.5)]
        assert_identical(Ethernet, ethernet_reference, senders)


class TestContendedEquivalence:
    """Rivals must acquire the medium at exactly the per-frame instants."""

    @pytest.mark.parametrize("factory,reference", MEDIA)
    def test_simultaneous_senders(self, factory, reference):
        senders = [("a", 0, 1, 20_000, 0.0), ("b", 2, 3, 8_192, 0.0)]
        assert_identical(factory, reference, senders)

    @pytest.mark.parametrize("factory,reference", MEDIA)
    def test_rival_arrives_mid_message(self, factory, reference):
        """The bulk hold is cut short and falls back frame-exactly."""
        senders = [
            ("a", 0, 1, 50_000, 0.0),
            ("b", 2, 3, 20_000, 0.003),   # lands mid-way through a's frames
            ("c", 3, 2, 12_345, 0.0071),  # odd offset, second interruption
        ]
        assert_identical(factory, reference, senders)

    def test_same_destination_port_contends_identically(self):
        for factory, reference in [(AtmLan, atm_reference),
                                   (AllnodeSwitch, crossbar_reference)]:
            senders = [("a", 0, 3, 65_536, 0.0), ("b", 1, 3, 65_536, 0.0005)]
            assert_identical(factory, reference, senders)

    def test_contention_clears_and_bulk_resumes(self):
        """After a short rival finishes, the long sender re-coalesces."""
        senders = [("a", 0, 1, 200_000, 0.0), ("b", 2, 3, 1_000, 0.01)]
        assert_identical(Ethernet, ethernet_reference, senders)

    @pytest.mark.parametrize("boundary_frames", [1, 2, 3, 5])
    def test_rival_lands_exactly_on_frame_boundary(self, boundary_frames):
        """A rival whose wake time is float-exactly a frame boundary
        must acquire the medium at that boundary, not a frame later."""
        probe = Ethernet(Environment(), 4)
        frame = probe.frame_seconds(probe.frame_format.payload_bytes)
        delay = 0.0
        for _ in range(boundary_frames):  # the clock's own accumulation
            delay += frame
        senders = [("a", 0, 1, 6 * 1460, 0.0), ("b", 2, 3, 2_920, delay)]
        assert_identical(Ethernet, ethernet_reference, senders)

    def test_rival_lands_exactly_at_hold_start(self):
        """A rival queuing at the very instant the hold begins must wait
        for the first frame (the per-frame path has already started it)."""

        def run(transfer_fn):
            env = Environment()
            net = Ethernet(env, 4)
            completions = {}

            def sender_a():
                yield env.timeout(0.0)
                yield from transfer_fn(net, 0, 1, 6 * 1460)
                completions["a"] = env.now

            def sender_b():
                # Two zero-hops: b's request event is created after a's
                # medium grant, so it pops once a's hold is in place —
                # same timestamp, strictly later event order.
                yield env.timeout(0.0)
                yield env.timeout(0.0)
                yield from transfer_fn(net, 2, 3, 2_920)
                completions["b"] = env.now

            env.process(sender_a())
            env.process(sender_b())
            env.run()
            return completions, net.stats.busy_seconds

        assert run(current_transfer) == run(ethernet_reference)


class TestSeededBackoffEquivalence:
    """The contended path must consume the backoff RNG exactly as the
    per-frame loop does (the bulk path only runs when no draw can
    occur, so the stream of draws is unchanged)."""

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_backoff_draws_identical(self, seed):
        senders = [
            ("a", 0, 1, 50_000, 0.0),
            ("b", 2, 3, 20_000, 0.003),
            ("c", 3, 2, 12_345, 0.0071),
        ]
        expected = run_scenario(Ethernet, ethernet_reference, senders,
                                backoff_rng=random.Random(seed))
        actual = run_scenario(Ethernet, current_transfer, senders,
                              backoff_rng=random.Random(seed))
        assert actual == expected

    def test_uncontended_run_leaves_rng_untouched(self):
        """The fast path must not draw: a post-run draw matches a
        freshly seeded generator's first draw."""
        rng = random.Random(99)
        run_scenario(Ethernet, current_transfer,
                     [("a", 0, 1, 100_000, 0.0)], backoff_rng=rng)
        assert rng.random() == random.Random(99).random()


class TestPlatformNoiseEquivalence:
    """The ``--noise`` path (``enable_noise`` over named RandomStreams,
    exactly what ``build_platform`` wires) must keep the fast path
    bit-exact: a seeded backoff draw only exists under contention,
    which already forces the per-frame path."""

    @staticmethod
    def noisy_factory(seed, scale=1.0):
        def factory(env, node_count, tracer=None):
            net = Ethernet(env, node_count, tracer=tracer)
            net.enable_noise(RandomStreams(seed), scale)
            return net
        return factory

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_contended_noise_is_exact(self, seed):
        senders = [
            ("a", 0, 1, 50_000, 0.0),
            ("b", 2, 3, 20_000, 0.003),
            ("c", 3, 2, 12_345, 0.0071),
        ]
        factory = self.noisy_factory(seed)
        assert_identical(factory, ethernet_reference, senders)

    def test_scaled_noise_is_exact(self):
        senders = [("a", 0, 1, 50_000, 0.0), ("b", 2, 3, 20_000, 0.003)]
        factory = self.noisy_factory(11, scale=2.5)
        assert_identical(factory, ethernet_reference, senders)

    @pytest.mark.parametrize("nbytes", [1460, 65_536, 1_000_000])
    def test_uncontended_noise_stays_on_bulk_path(self, nbytes):
        """No rival, no draw: a noisy uncontended transfer still
        coalesces and matches the per-frame reference bit for bit."""
        factory = self.noisy_factory(42)
        assert_identical(factory, ethernet_reference,
                         [("a", 0, 1, nbytes, 0.0)])

    def test_uncontended_noise_schedules_few_events(self):
        """Noise enabled but uncontended: the coalescing still fires."""
        env = Environment()
        net = Ethernet(env, 2)
        net.enable_noise(RandomStreams(5))
        process = env.process(net.transfer(0, 1, 1_000_000))
        env.run(until=process)
        assert env._eid() < 20


class TestFastPathIsActuallyFast:
    def test_bulk_transfer_schedules_far_fewer_events(self):
        """~700 frames of an uncontended 1 MB message collapse into a
        handful of scheduled events instead of thousands."""
        env = Environment()
        net = Ethernet(env, 2)
        process = env.process(net.transfer(0, 1, 1_000_000))
        env.run(until=process)
        # The event-id counter counts every event ever scheduled.
        events_scheduled = env._eid()
        frames = net.frame_format.frame_count(1_000_000)
        assert frames > 600
        assert events_scheduled < 20

    def test_contended_transfer_still_terminates_with_stale_expiry(self):
        """An interrupted bulk hold leaves its expiry event in the heap;
        it must pop harmlessly before the run ends."""
        env = Environment()
        net = Ethernet(env, 4)
        done = []

        def sender(src, dst, nbytes, delay):
            yield env.timeout(delay)
            yield from net.transfer(src, dst, nbytes)
            done.append(env.now)

        env.process(sender(0, 1, 50_000, 0.0))
        env.process(sender(2, 3, 8_192, 0.003))
        env.run()
        assert len(done) == 2
        # After the drain the clock sits at the last real completion,
        # not at the stale bulk expiry.
        assert env.now == max(done)
