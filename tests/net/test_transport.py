"""Unit tests for the windowed TCP-like transport."""

import pytest

from repro.net import AtmLan, Ethernet, TcpTransport
from repro.sim import Environment


def run_transfer(transport, src, dst, nbytes):
    env = transport.network.env
    process = env.process(transport.transfer(src, dst, nbytes))
    env.run(until=process)
    return env.now


class TestTcpTransport:
    def test_window_must_be_positive(self):
        network = Ethernet(Environment(), 2)
        with pytest.raises(ValueError):
            TcpTransport(network, window_bytes=0)

    def test_single_window_no_stall(self):
        env = Environment()
        network = Ethernet(env, 2)
        transport = TcpTransport(network, window_bytes=8192)
        duration = run_transfer(transport, 0, 1, 4096)

        raw_env = Environment()
        raw = Ethernet(raw_env, 2)
        process = raw_env.process(raw.transfer(0, 1, 4096))
        raw_env.run(until=process)
        assert duration == pytest.approx(raw_env.now)

    def test_multi_window_adds_stalls(self):
        env = Environment()
        network = Ethernet(env, 2)
        transport = TcpTransport(network, window_bytes=4096, ack_turnaround_seconds=1e-3)
        duration_16k = run_transfer(transport, 0, 1, 16384)

        env2 = Environment()
        network2 = Ethernet(env2, 2)
        transport_wide = TcpTransport(network2, window_bytes=65536)
        duration_wide = run_transfer(transport_wide, 0, 1, 16384)

        # 16 KB in 4 KB windows -> 3 internal stalls of >= 1 ms + acks.
        assert duration_16k > duration_wide + 3e-3

    def test_zero_bytes_still_crosses_wire(self):
        env = Environment()
        transport = TcpTransport(Ethernet(env, 2))
        duration = run_transfer(transport, 0, 1, 0)
        assert duration > 0

    def test_last_window_needs_no_ack(self):
        """Exactly one window -> no ack; one byte more -> acks appear."""
        env = Environment()
        network = Ethernet(env, 2)
        transport = TcpTransport(network, window_bytes=4096)
        run_transfer(transport, 0, 1, 4096)
        assert network.stats.messages == 1  # no ack message

        env2 = Environment()
        network2 = Ethernet(env2, 2)
        transport2 = TcpTransport(network2, window_bytes=4096)
        process = env2.process(transport2.transfer(0, 1, 4097))
        env2.run(until=process)
        # Two data windows + one ack between them.
        assert network2.stats.messages == 3

    def test_works_over_atm(self):
        env = Environment()
        transport = TcpTransport(AtmLan(env, 2), window_bytes=8192)
        duration = run_transfer(transport, 0, 1, 65536)
        assert duration > 0
