"""Unit tests for frame/cell arithmetic (repro.net.base, repro.net.atm)."""

import random

import pytest

from repro.net import FrameFormat, cells_for

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare images
    HAVE_HYPOTHESIS = False


class TestFrameFormat:
    def test_payload_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameFormat(0, 10)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            FrameFormat(100, -1)

    def test_frame_count_exact_multiple(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(3000) == 3

    def test_frame_count_rounds_up(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(3001) == 4

    def test_zero_bytes_is_one_frame(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(0) == 1

    def test_frame_payloads_partition_message(self):
        fmt = FrameFormat(1000, 50)
        payloads = list(fmt.frame_payloads(2500))
        assert payloads == [1000, 1000, 500]
        assert sum(payloads) == 2500

    def test_frame_payloads_zero(self):
        fmt = FrameFormat(1000, 50)
        assert list(fmt.frame_payloads(0)) == [0]

    def test_wire_bytes_adds_overhead(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.wire_bytes(1000) == 1050

    def test_wire_bytes_respects_minimum(self):
        fmt = FrameFormat(1000, 50, min_wire_bytes=84)
        assert fmt.wire_bytes(0) == 84
        assert fmt.wire_bytes(10) == 84
        assert fmt.wire_bytes(100) == 150

    def test_total_wire_bytes(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.total_wire_bytes(2500) == 2500 + 3 * 50

    def test_last_frame_payload(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.last_frame_payload(0) == 0
        assert fmt.last_frame_payload(1) == 1
        assert fmt.last_frame_payload(1000) == 1000
        assert fmt.last_frame_payload(1001) == 1
        assert fmt.last_frame_payload(2500) == 500


def _per_frame_sum(fmt: FrameFormat, nbytes: int) -> int:
    """The original O(frames) definition of total_wire_bytes."""
    return sum(fmt.wire_bytes(p) for p in fmt.frame_payloads(nbytes))


def _check_closed_form(payload, overhead, min_wire, nbytes):
    fmt = FrameFormat(payload, overhead, min_wire)
    assert fmt.total_wire_bytes(nbytes) == _per_frame_sum(fmt, nbytes)
    payloads = list(fmt.frame_payloads(nbytes))
    assert fmt.frame_count(nbytes) == len(payloads)
    assert fmt.last_frame_payload(nbytes) == payloads[-1]


class TestTotalWireBytesClosedForm:
    """The O(1) arithmetic must equal the per-frame generator sum."""

    if HAVE_HYPOTHESIS:

        @settings(max_examples=200, deadline=None)
        @given(
            payload=st.integers(min_value=1, max_value=10_000),
            overhead=st.integers(min_value=0, max_value=500),
            min_wire=st.integers(min_value=0, max_value=600),
            nbytes=st.integers(min_value=-10, max_value=2_000_000),
        )
        def test_property(self, payload, overhead, min_wire, nbytes):
            _check_closed_form(payload, overhead, min_wire, nbytes)

    else:  # pragma: no cover - exercised on bare images

        @pytest.mark.parametrize("seed", range(0, 200, 8))
        def test_property(self, seed):
            rng = random.Random(seed)
            _check_closed_form(
                rng.randint(1, 10_000),
                rng.randint(0, 500),
                rng.randint(0, 600),
                rng.randint(-10, 2_000_000),
            )

    @pytest.mark.parametrize("nbytes", [0, 1, 999, 1000, 1001, 2000, 2001])
    def test_boundaries(self, nbytes):
        _check_closed_form(1000, 50, 84, nbytes)


class TestAtmCells:
    def test_empty_message_is_one_cell(self):
        # The AAL5 trailer alone fits one cell.
        assert cells_for(0) == 1

    def test_trailer_forces_extra_cell(self):
        # 48 bytes of payload + 8 trailer bytes -> 2 cells.
        assert cells_for(48) == 2

    def test_exact_fit(self):
        # 40 bytes + 8 trailer = 48 -> exactly 1 cell.
        assert cells_for(40) == 1

    def test_large_message(self):
        # 1 KB + trailer: ceil(1032/48) = 22 cells.
        assert cells_for(1024) == 22

    def test_cell_count_monotone(self):
        counts = [cells_for(n) for n in range(0, 4096, 7)]
        assert counts == sorted(counts)
