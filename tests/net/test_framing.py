"""Unit tests for frame/cell arithmetic (repro.net.base, repro.net.atm)."""

import pytest

from repro.net import FrameFormat, cells_for


class TestFrameFormat:
    def test_payload_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameFormat(0, 10)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            FrameFormat(100, -1)

    def test_frame_count_exact_multiple(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(3000) == 3

    def test_frame_count_rounds_up(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(3001) == 4

    def test_zero_bytes_is_one_frame(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.frame_count(0) == 1

    def test_frame_payloads_partition_message(self):
        fmt = FrameFormat(1000, 50)
        payloads = list(fmt.frame_payloads(2500))
        assert payloads == [1000, 1000, 500]
        assert sum(payloads) == 2500

    def test_frame_payloads_zero(self):
        fmt = FrameFormat(1000, 50)
        assert list(fmt.frame_payloads(0)) == [0]

    def test_wire_bytes_adds_overhead(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.wire_bytes(1000) == 1050

    def test_wire_bytes_respects_minimum(self):
        fmt = FrameFormat(1000, 50, min_wire_bytes=84)
        assert fmt.wire_bytes(0) == 84
        assert fmt.wire_bytes(10) == 84
        assert fmt.wire_bytes(100) == 150

    def test_total_wire_bytes(self):
        fmt = FrameFormat(1000, 50)
        assert fmt.total_wire_bytes(2500) == 2500 + 3 * 50


class TestAtmCells:
    def test_empty_message_is_one_cell(self):
        # The AAL5 trailer alone fits one cell.
        assert cells_for(0) == 1

    def test_trailer_forces_extra_cell(self):
        # 48 bytes of payload + 8 trailer bytes -> 2 cells.
        assert cells_for(48) == 2

    def test_exact_fit(self):
        # 40 bytes + 8 trailer = 48 -> exactly 1 cell.
        assert cells_for(40) == 1

    def test_large_message(self):
        # 1 KB + trailer: ceil(1032/48) = 22 cells.
        assert cells_for(1024) == 22

    def test_cell_count_monotone(self):
        counts = [cells_for(n) for n in range(0, 4096, 7)]
        assert counts == sorted(counts)
