"""Seeded stochastic network models (the --noise knob).

Every medium owns a jitter/backoff model drawn from a *named* stream
of the platform's :class:`RandomStreams`.  The contract these tests
pin:

* disabled by default — a network without ``enable_noise`` simulates
  exactly what it always did;
* reproducible — the same (medium, traffic, seed) triple replays the
  same timings bit for bit;
* real — different seeds actually produce different timings;
* isolated — each medium draws from its own stream, so enabling one
  model never perturbs another consumer of the platform's streams.
"""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.hardware.catalog import build_platform
from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.net.base import Network
from repro.sim import Environment, RandomStreams

JITTER_MEDIA = [
    pytest.param(FddiRing, id="fddi"),
    pytest.param(AtmLan, id="atm-lan"),
    pytest.param(AtmWan, id="atm-wan"),
    pytest.param(AllnodeSwitch, id="allnode"),
]

ALL_MEDIA = JITTER_MEDIA + [pytest.param(Ethernet, id="ethernet")]


def run_uncontended(factory, seed=None, nbytes=20_000):
    """One 0->1 transfer; returns its completion time."""
    env = Environment()
    net = factory(env, 4)
    if seed is not None:
        net.enable_noise(RandomStreams(seed))
    process = env.process(net.transfer(0, 1, nbytes))
    env.run(until=process)
    return env.now


def run_contended(factory, seed=None, nbytes=20_000):
    """Two overlapping transfers; returns both completion times."""
    env = Environment()
    net = factory(env, 4)
    if seed is not None:
        net.enable_noise(RandomStreams(seed))
    done = {}

    def sender(name, src, dst, delay):
        yield env.timeout(delay)
        yield from net.transfer(src, dst, nbytes)
        done[name] = env.now

    env.process(sender("a", 0, 1, 0.0))
    env.process(sender("b", 2, 3, 0.001))
    env.run()
    return done


class TestEnableNoise:
    def test_base_network_has_no_model(self):
        net = Network(Environment(), 2)
        with pytest.raises(NetworkError, match="no stochastic model"):
            net.enable_noise(RandomStreams(0))

    @pytest.mark.parametrize("factory", ALL_MEDIA)
    def test_nonpositive_scale_rejected(self, factory):
        net = factory(Environment(), 4)
        for scale in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(NetworkError, match="noise scale"):
                net.enable_noise(RandomStreams(0), scale)

    @pytest.mark.parametrize("factory", ALL_MEDIA)
    def test_enable_noise_is_idempotent_in_amplitude(self, factory):
        """Re-attaching at the same scale never compounds: the
        amplitude is always nominal * scale, not previous * scale."""
        net = factory(Environment(), 4)
        net.enable_noise(RandomStreams(0), 2.0)
        first = getattr(net, "_max_jitter", None) or net._max_backoff
        net.enable_noise(RandomStreams(0), 2.0)
        second = getattr(net, "_max_jitter", None) or net._max_backoff
        assert second == first

    @pytest.mark.parametrize(
        "factory,stream_name",
        [
            pytest.param(FddiRing, "fddi.token", id="fddi"),
            pytest.param(AtmLan, "atm.switch", id="atm-lan"),
            pytest.param(AtmWan, "atm.switch", id="atm-wan"),
            pytest.param(AllnodeSwitch, "allnode.switch", id="allnode"),
        ],
    )
    def test_each_medium_uses_its_own_named_stream(self, factory, stream_name):
        """The jitter generator is a *named* stream, so enabling one
        medium's model never perturbs another stream's consumers."""
        streams = RandomStreams(7)
        net = factory(Environment(), 4)
        net.enable_noise(streams)
        assert net._jitter_rng is streams.stream(stream_name)
        assert net._max_jitter > 0.0


class TestDisabledByDefault:
    @pytest.mark.parametrize("factory", ALL_MEDIA)
    def test_default_matches_pre_noise_behavior(self, factory):
        """A medium without enable_noise is exactly deterministic."""
        assert run_uncontended(factory) == run_uncontended(factory)
        assert run_contended(factory) == run_contended(factory)

    @pytest.mark.parametrize("factory", JITTER_MEDIA)
    def test_enabling_noise_changes_timings(self, factory):
        assert run_uncontended(factory, seed=0) != run_uncontended(factory)


class TestReproducibility:
    @pytest.mark.parametrize("factory", ALL_MEDIA)
    def test_same_seed_is_bit_identical(self, factory):
        assert run_contended(factory, seed=3) == run_contended(factory, seed=3)

    @pytest.mark.parametrize("factory", ALL_MEDIA)
    def test_different_seeds_differ(self, factory):
        assert run_contended(factory, seed=0) != run_contended(factory, seed=1)

    @pytest.mark.parametrize("factory", JITTER_MEDIA)
    def test_scale_stretches_jitter(self, factory):
        """scale multiplies the model's nominal amplitude."""
        net_1x = factory(Environment(), 4)
        net_1x.enable_noise(RandomStreams(0))
        net_3x = factory(Environment(), 4)
        net_3x.enable_noise(RandomStreams(0), 3.0)
        assert net_3x._max_jitter == pytest.approx(3.0 * net_1x._max_jitter)


class TestBuildPlatformWiring:
    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_invalid_noise_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="noise"):
            build_platform("sun-ethernet", processors=2, noise=bad)

    def test_default_platform_stays_deterministic(self):
        platform = build_platform("sun-ethernet", processors=2)
        assert platform.network._backoff_rng is None

    @pytest.mark.parametrize(
        "name", ["sun-ethernet", "alpha-fddi", "sun-atm-lan", "sun-atm-wan", "sp1-switch"]
    )
    def test_noise_attaches_the_medium_model(self, name):
        platform = build_platform(name, processors=2, noise=1.0)
        net = platform.network
        if isinstance(net, Ethernet):
            assert net._backoff_rng is platform.rng.stream("ethernet.backoff")
        else:
            assert net._jitter_rng is not None
            assert net._max_jitter > 0.0

    def test_stream_names_show_the_attached_model(self):
        platform = build_platform("alpha-fddi", processors=2, noise=1.0)
        assert "fddi.token" in platform.rng.stream_names()
        assert build_platform("alpha-fddi", processors=2).rng.stream_names() == ()

    def test_noise_scale_reaches_the_model(self):
        half = build_platform("alpha-fddi", processors=2, noise=0.5).network
        full = build_platform("alpha-fddi", processors=2, noise=1.0).network
        assert half._max_jitter == pytest.approx(0.5 * full._max_jitter)

    def test_ethernet_uncontended_transfer_never_draws(self):
        """Without contention there is no backoff draw, so a noisy
        uncontended platform still produces the deterministic time —
        and leaves the stream untouched for later consumers."""
        platform = build_platform("sun-ethernet", processors=2, noise=1.0)
        process = platform.env.process(platform.network.transfer(0, 1, 100_000))
        platform.env.run(until=process)
        baseline = build_platform("sun-ethernet", processors=2)
        process = baseline.env.process(baseline.network.transfer(0, 1, 100_000))
        baseline.env.run(until=process)
        assert platform.env.now == baseline.env.now
        # First post-run draw == first draw of a fresh identical stream.
        fresh = RandomStreams(0).stream("ethernet.backoff")
        assert platform.rng.stream("ethernet.backoff").random() == fresh.random()
