"""Executor protocol conformance, shared across every backend.

One parametrized suite pins the contract of
``Executor.submit(jobs, retries) -> Iterator[JobOutcome]`` — ordering,
laziness, telemetry fields, retry semantics, lifecycle, recovery —
against the three built-in backends.  A future backend (remote
workers over the sharded cache) should pass by adding itself to
``BACKENDS`` and nothing else.
"""

import multiprocessing

import pytest

from repro.core.jobs import execute_job
from repro.core.scheduler import (
    AsyncExecutor,
    Executor,
    ProcessPoolExecutor,
    Scheduler,
    SerialExecutor,
)
from repro.core.spec import EvaluationSpec
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


BACKENDS = {
    "serial": lambda: SerialExecutor(),
    "process": lambda: ProcessPoolExecutor(max_workers=2),
    "async": lambda: AsyncExecutor(max_workers=2),
}


@pytest.fixture(params=sorted(BACKENDS))
def executor(request):
    instance = BACKENDS[request.param]()
    yield instance
    instance.close()


@pytest.fixture(scope="module")
def reference():
    """Serial ground truth: job -> value for the shared job list."""
    jobs = tiny_spec(tools=("p4", "express")).jobs()
    return jobs, [execute_job(job) for job in jobs]


# Jobs that already failed once in this process (or a forked worker):
# lets a retry test fail each job's first attempt deterministically
# without any cross-process coordination.
_FAILED_ONCE = set()


def _flaky_execute(job):
    if job not in _FAILED_ONCE:
        _FAILED_ONCE.add(job)
        raise OSError("transient failure (injected)")
    return 1.0


class TestProtocolSurface:
    def test_capability_flags(self, executor):
        assert isinstance(executor, Executor)
        assert isinstance(executor.name, str) and executor.name
        assert executor.supports_streaming is True
        assert isinstance(executor.max_workers, int)
        assert executor.max_workers >= 1

    def test_worker_count_validated(self, executor):
        if type(executor) is SerialExecutor:
            pytest.skip("serial backend has no worker knob")
        with pytest.raises(EvaluationError):
            type(executor)(max_workers=0)

    def test_context_manager_closes(self, executor):
        with executor as entered:
            assert entered is executor
        # close() is idempotent and a closed executor is reusable.
        executor.close()
        jobs = tiny_spec(tools=("p4",)).jobs()[:2]
        assert list(executor.submit(jobs))


class TestSubmitSemantics:
    def test_outcomes_stream_in_job_order(self, executor, reference):
        jobs, expected = reference
        outcomes = list(executor.submit(jobs))
        assert len(outcomes) == len(jobs)
        assert [outcome.value for outcome in outcomes] == expected

    def test_outcome_fields(self, executor):
        jobs = tiny_spec(tools=("p4",)).jobs()[:4]
        for outcome in executor.submit(jobs):
            assert outcome.attempts == 1
            assert outcome.wall_seconds > 0.0
            assert outcome.value is None or isinstance(outcome.value, float)

    def test_empty_job_stream(self, executor):
        assert list(executor.submit([])) == []

    def test_accepts_lazy_iterable(self, executor):
        jobs = tiny_spec(tools=("p4",)).jobs()[:4]
        outcomes = list(executor.submit(iter(jobs)))
        assert [outcome.value for outcome in outcomes] == [
            execute_job(job) for job in jobs
        ]

    def test_abandoned_stream_leaves_executor_usable(self, executor):
        jobs = tiny_spec().jobs()
        stream = executor.submit(jobs)
        first = next(stream)
        assert first.value == execute_job(jobs[0])
        stream.close()  # consumer walks away mid-run
        again = list(executor.submit(jobs[:3]))
        assert len(again) == 3

    def test_retries_validated(self, executor):
        with pytest.raises(EvaluationError):
            list(executor.submit(tiny_spec(tools=("p4",)).jobs()[:1], retries=0))

    def test_lazy_iterable_consumption_is_bounded(self, executor):
        """A stalled consumer must exert backpressure: the backend may
        run ahead of consumption only by its admission window(s), so a
        huge lazy grid never piles up as finished-but-unconsumed
        outcomes (store-as-completed persistence granularity)."""
        import time

        jobs = tiny_spec(platforms=("sun-ethernet", "sun-atm-lan"),
                         seeds=(0, 1)).jobs()  # 60 jobs
        pulled = []

        def lazy():
            for job in jobs:
                pulled.append(job)
                yield job

        stream = executor.submit(lazy())
        next(stream)  # consume one outcome, then stall
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            before = len(pulled)
            time.sleep(0.05)
            if len(pulled) == before:
                break  # admission has quiesced against the stall
        # Window accounting per backend: serial pulls one at a time;
        # process keeps window chunks of chunk_jobs in flight; async
        # holds one window in flight plus one queued.
        if type(executor) is SerialExecutor:
            bound = 2
        elif isinstance(executor, ProcessPoolExecutor):
            bound = executor.max_workers * executor.window_factor * executor.chunk_jobs + executor.chunk_jobs
        else:
            bound = 2 * executor.max_workers * executor.window_factor + 2
        assert len(pulled) <= bound, (
            "%s ran %d jobs ahead of a stalled consumer (bound %d)"
            % (executor.name, len(pulled), bound)
        )
        assert len(pulled) < len(jobs)  # the grid never fully drained
        stream.close()


class TestRetries:
    def _patch_flaky(self, executor, monkeypatch):
        if (
            isinstance(executor, ProcessPoolExecutor)
            and multiprocessing.get_start_method() != "fork"
        ):
            pytest.skip("monkeypatched execute_job reaches workers only via fork")
        import repro.core.executors as executors_module

        _FAILED_ONCE.clear()
        monkeypatch.setattr(executors_module, "execute_job", _flaky_execute)

    def test_transient_failures_retried_and_counted(self, executor, monkeypatch):
        self._patch_flaky(executor, monkeypatch)
        jobs = tiny_spec(tools=("p4",)).jobs()[:4]
        outcomes = list(executor.submit(jobs, retries=2))
        assert [outcome.value for outcome in outcomes] == [1.0] * 4
        assert [outcome.attempts for outcome in outcomes] == [2] * 4

    def test_without_retries_the_failure_propagates(self, executor, monkeypatch):
        self._patch_flaky(executor, monkeypatch)
        with pytest.raises(OSError, match="transient"):
            list(executor.submit(tiny_spec(tools=("p4",)).jobs()[:2], retries=1))


class TestBrokenPoolRecovery:
    def test_broken_pool_dropped_then_rebuilt(self, executor):
        if not isinstance(executor, ProcessPoolExecutor):
            pytest.skip("only pool-backed executors can lose workers")
        import concurrent.futures

        class BrokenPool(object):
            def submit(self, *args, **kwargs):
                raise concurrent.futures.BrokenExecutor("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        jobs = tiny_spec(tools=("p4",)).jobs()[:2]
        executor._pool = BrokenPool()
        with pytest.raises(concurrent.futures.BrokenExecutor):
            list(executor.submit(jobs))
        assert executor._pool is None  # poisoned pool dropped
        # The next pass transparently builds a working pool.
        assert [outcome.value for outcome in executor.submit(jobs)] == [
            execute_job(job) for job in jobs
        ]


class TestSchedulerIntegration:
    def test_values_and_telemetry_agree_across_backends(self, executor):
        """Simulations are deterministic, so the backend is invisible
        in the values and visible only in telemetry provenance."""
        spec = tiny_spec(tools=("p4",))
        baseline = Scheduler().run(spec)
        scheduler = Scheduler(executor=executor)
        result = scheduler.run(spec)
        assert result.values == baseline.values
        assert scheduler.simulations_run == spec.job_count()
        for record in result.telemetry.values():
            assert record.executor == executor.name
            assert not record.cache_hit
            assert record.wall_seconds > 0.0
            assert record.attempts == 1
