"""Property tests for the scoring/weighting math (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import ADL, APL, TPL, WeightProfile, aggregate_scores, ratio_scores

score = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


class TestRatioScoreProperties:
    @given(values=st.dictionaries(st.sampled_from("abcde"), positive, min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_scores_in_unit_interval_and_best_is_one(self, values):
        scores = ratio_scores(values)
        assert all(0.0 < s <= 1.0 for s in scores.values())
        assert max(scores.values()) == 1.0

    @given(values=st.dictionaries(st.sampled_from("abcde"), positive, min_size=2))
    @settings(max_examples=60, deadline=None)
    def test_score_order_inverts_value_order(self, values):
        scores = ratio_scores(values)
        by_value = sorted(values, key=lambda k: values[k])
        by_score = sorted(scores, key=lambda k: -scores[k])
        assert [values[k] for k in by_value] == sorted(values.values())
        # Equal values may tie; compare the sorted numeric sequences.
        assert sorted(scores.values(), reverse=True) == [
            scores[k] for k in sorted(scores, key=lambda k: values[k])
        ]

    @given(
        values=st.dictionaries(st.sampled_from("abcde"), positive, min_size=1),
        scale=positive,
    )
    @settings(max_examples=60, deadline=None)
    def test_scores_scale_invariant(self, values, scale):
        base = ratio_scores(values)
        scaled = ratio_scores({k: v * scale for k, v in values.items()})
        for key in values:
            assert abs(base[key] - scaled[key]) < 1e-9


class TestWeightProperties:
    @given(tpl=score, apl=score, adl=score, w1=positive, w2=positive, w3=positive)
    @settings(max_examples=60, deadline=None)
    def test_overall_bounded_by_level_scores(self, tpl, apl, adl, w1, w2, w3):
        profile = WeightProfile("x", {TPL: w1, APL: w2, ADL: w3})
        overall = profile.overall({TPL: tpl, APL: apl, ADL: adl})
        assert min(tpl, apl, adl) - 1e-9 <= overall <= max(tpl, apl, adl) + 1e-9

    @given(tpl=score, apl=score, adl=score, bump=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_overall_monotone_in_each_level(self, tpl, apl, adl, bump):
        profile = WeightProfile("x", {TPL: 1.0, APL: 1.0, ADL: 1.0})
        base = profile.overall({TPL: tpl, APL: apl, ADL: adl})
        better = profile.overall({TPL: min(tpl + bump, 1.0), APL: apl, ADL: adl})
        assert better >= base - 1e-12

    @given(
        sets=st.lists(
            st.dictionaries(st.sampled_from("ab"), score, min_size=2, max_size=2),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregate_stays_in_convex_hull(self, sets):
        combined = aggregate_scores(sets)
        for tool in ("a", "b"):
            per_set = [s[tool] for s in sets]
            assert min(per_set) - 1e-12 <= combined[tool] <= max(per_set) + 1e-12
