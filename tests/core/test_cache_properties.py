"""Property-based cache guarantees: round-trip and shard routing.

One randomized-job generator backs two harnesses: when ``hypothesis``
is installed its engine drives (and shrinks) the generator seeds;
without it, a fixed spread of seeds exercises the same properties.
The properties themselves:

* any :class:`MeasurementJob` stored in a :class:`DiskBackend` reads
  back equal — value through a fresh backend over the same directory,
  and the job itself reconstructed from the on-disk entry;
* :class:`ShardedBackend` routes every key to exactly one shard, and
  any two processes holding the same roster agree on the placement.
"""

import random
import string
import tempfile

import pytest

from repro.core.cache import (
    MISSING,
    DiskBackend,
    MemoryBackend,
    ResultCache,
    ShardedBackend,
    job_key,
)
from repro.core.jobs import JOB_KINDS, MeasurementJob

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare images
    HAVE_HYPOTHESIS = False

FALLBACK_SEEDS = range(0, 200, 8)


def random_job(rng: random.Random) -> MeasurementJob:
    """One arbitrary (but valid) job drawn from ``rng``."""

    def scalar():
        return rng.choice([
            rng.randint(-(2 ** 31), 2 ** 31),
            rng.uniform(-1e6, 1e6),
            "".join(rng.choice(string.ascii_letters) for _ in range(rng.randint(1, 12))),
            rng.random() < 0.5,
        ])

    params = tuple(
        ("p%d_%s" % (index, rng.choice(string.ascii_lowercase)), scalar())
        for index in range(rng.randint(0, 5))
    )
    return MeasurementJob(
        kind=rng.choice(JOB_KINDS),
        tool=rng.choice(["express", "p4", "pvm", "mpi", "custom-%d" % rng.randint(0, 99)]),
        platform=rng.choice(["sun-ethernet", "alpha-fddi", "lab-%d" % rng.randint(0, 99)]),
        processors=rng.randint(2, 128),
        params=params,
        seed=rng.randint(0, 2 ** 31),
    )


def random_sample(rng: random.Random):
    return rng.choice([None, 0.0, rng.uniform(1e-9, 1e3)])


def check_disk_round_trip(seed: int) -> None:
    rng = random.Random(seed)
    job = random_job(rng)
    value = random_sample(rng)
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache.on_disk(root)
        assert cache.lookup(job) is MISSING
        cache.store(job, value)
        # A fresh cache over the same directory: the resume path.
        fresh = ResultCache(DiskBackend(root))
        assert fresh.lookup(job) == value
        entries = list(DiskBackend(root).entries())
        assert entries == [(job, value)]
        assert entries[0][0] == job  # reconstructed job hashes equal
        assert hash(entries[0][0]) == hash(job)


def check_sharded_routing(seed: int) -> None:
    rng = random.Random(seed)
    job = random_job(rng)
    shards = rng.randint(1, 9)
    key = job_key(job)
    backend = ShardedBackend([MemoryBackend() for _ in range(shards)])
    backend.put(key, 1.0, job)
    holders = [index for index, child in enumerate(backend.backends) if key in child]
    assert holders == [backend.shard_index(key)]
    # A second process with the same roster places the key identically.
    twin = ShardedBackend([MemoryBackend() for _ in range(shards)])
    assert twin.shard_index(key) == backend.shard_index(key)
    assert backend.get(key) == 1.0


if HAVE_HYPOTHESIS:

    class TestWithHypothesis:
        @settings(max_examples=30, deadline=None)
        @given(st.integers(min_value=0, max_value=2 ** 63))
        def test_disk_round_trip(self, seed):
            check_disk_round_trip(seed)

        @settings(max_examples=50, deadline=None)
        @given(st.integers(min_value=0, max_value=2 ** 63))
        def test_sharded_routing(self, seed):
            check_sharded_routing(seed)

else:  # pragma: no cover - exercised on bare images

    class TestWithRandomSeeds:
        @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
        def test_disk_round_trip(self, seed):
            check_disk_round_trip(seed)

        @pytest.mark.parametrize("seed", FALLBACK_SEEDS)
        def test_sharded_routing(self, seed):
            check_sharded_routing(seed)
