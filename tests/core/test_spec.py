"""Unit tests for the declarative EvaluationSpec and job expansion."""

import pytest

from repro.core import ADL, APL, TPL
from repro.core.jobs import MeasurementJob, application_job, sendrecv_job
from repro.core.spec import DEFAULT_APP_PARAMS, DEFAULT_TPL_SIZES, EvaluationSpec
from repro.core.weights import BALANCED, END_USER, WeightProfile
from repro.errors import EvaluationError


class TestValidation:
    def test_defaults_are_valid(self):
        spec = EvaluationSpec()
        assert spec.tools == ("express", "p4", "pvm")
        assert spec.platforms == ("sun-ethernet",)
        assert spec.tpl_sizes == DEFAULT_TPL_SIZES
        assert spec.apps == tuple(sorted(DEFAULT_APP_PARAMS))
        assert spec.profiles == (BALANCED,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tools": ()},
            {"tools": ("p4", "linda")},
            {"tools": ("p4", "p4")},
            {"platforms": ()},
            {"platforms": ("cray-t3d",)},
            {"platforms": ("sun-ethernet", "sun-ethernet")},
            {"processors": 1},
            {"tpl_sizes": (1024, 0)},
            {"tpl_sizes": (1024, 1024)},
            {"global_sum_ints": 0},
            {"apps": ()},
            {"apps": ("tetris",)},
            {"profiles": ()},
            {"profiles": ("nonsense",)},
            {"profiles": (BALANCED, "balanced")},
            {"profiles": (42,)},
            {"seeds": ()},
            {"seeds": (1, 1)},
            {"noise": -0.1},
            {"noise": float("nan")},
            {"noise": float("inf")},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(EvaluationError):
            EvaluationSpec(**kwargs)

    def test_profile_names_resolve_to_presets(self):
        spec = EvaluationSpec(profiles=("balanced", "end-user"))
        assert spec.profiles == (BALANCED, END_USER)

    def test_error_lists_available_tools(self):
        with pytest.raises(EvaluationError, match="available: .*p4"):
            EvaluationSpec(tools=("linda",))

    def test_app_params_never_alias_defaults(self):
        spec = EvaluationSpec()
        spec.app_params["jpeg"]["height"] = 999
        assert DEFAULT_APP_PARAMS["jpeg"]["height"] == 256
        assert EvaluationSpec().app_params["jpeg"]["height"] == 256


class TestJobExpansion:
    def test_job_count_and_grid(self):
        spec = EvaluationSpec(
            tools=("p4", "pvm"),
            platforms=("sun-ethernet", "alpha-fddi"),
            tpl_sizes=(1024, 16384),
            apps=("montecarlo",),
            seeds=(0, 7),
        )
        # Per (platform, seed): 2 sizes * 3 primitives * 2 tools
        # + global sum * 2 tools + 1 app * 2 tools = 16 jobs.
        assert spec.job_count() == 16 * 2 * 2
        assert len(spec.cells()) == 2 * 1 * 2

    def test_profiles_do_not_add_jobs(self):
        one = EvaluationSpec(profiles=("balanced",))
        four = EvaluationSpec(
            profiles=("balanced", "end-user", "tool-developer", "application-developer")
        )
        assert one.jobs() == four.jobs()

    def test_jobs_are_hashable_and_unique(self):
        jobs = EvaluationSpec().jobs()
        assert len(set(jobs)) == len(jobs)

    def test_sendrecv_is_a_two_rank_run(self):
        assert sendrecv_job("p4", "sun-ethernet", 1024).processors == 2

    def test_application_job_carries_params(self):
        job = application_job("jpeg", "p4", "sun-ethernet", 4, height=64, width=64)
        assert job.params_dict() == {"app": "jpeg", "height": 64, "width": 64}

    def test_unknown_kind_rejected(self):
        with pytest.raises(EvaluationError):
            MeasurementJob("teleport", "p4", "sun-ethernet", 2)

    def test_noise_reaches_every_job(self):
        spec = EvaluationSpec(apps=("montecarlo",), noise=0.5)
        assert all(job.noise == 0.5 for job in spec.jobs())
        assert all(job.noise == 0.0 for job in spec.with_(noise=0.0).jobs())

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_job_noise_rejected(self, bad):
        """Negative is nonsense; NaN would additionally break job
        equality (NaN != NaN) and therefore caching."""
        with pytest.raises(EvaluationError):
            sendrecv_job("p4", "sun-ethernet", 1024, noise=bad)

    def test_noise_distinguishes_jobs(self):
        """A noisy job is a different measurement — different hash,
        different serialization, different cache address."""
        from repro.core.cache import job_key

        det = sendrecv_job("p4", "sun-ethernet", 1024)
        noisy = sendrecv_job("p4", "sun-ethernet", 1024, noise=1.0)
        assert det != noisy
        assert job_key(det) != job_key(noisy)
        # Deterministic serialization is byte-stable with the
        # pre-noise format (existing caches/goldens stay valid).
        assert "noise" not in det.to_dict()
        assert noisy.to_dict()["noise"] == 1.0
        assert MeasurementJob.from_dict(noisy.to_dict()) == noisy
        assert MeasurementJob.from_dict(det.to_dict()) == det
        assert "noise=1" in noisy.label() and "noise" not in det.label()


class TestSerialization:
    def test_dict_round_trip(self):
        spec = EvaluationSpec(
            tools=("p4", "express"),
            platforms=("sun-atm-lan", "sp1-switch"),
            processors=6,
            tpl_sizes=(2048,),
            global_sum_ints=1000,
            apps=("fft2d", "psrs"),
            app_params={"fft2d": {"size": 32}},
            profiles=("end-user", "tool-developer"),
            seeds=(3, 5),
        )
        clone = EvaluationSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.to_dict() == spec.to_dict()

    def test_json_round_trip_preserves_custom_profile(self):
        custom = WeightProfile("tpl-only", {TPL: 1.0, APL: 0.0, ADL: 0.0})
        spec = EvaluationSpec(profiles=(custom, "balanced"))
        clone = EvaluationSpec.from_json(spec.to_json())
        assert [p.name for p in clone.profiles] == ["tpl-only", "balanced"]
        assert clone.profiles[0].levels == custom.levels
        assert clone.jobs() == spec.jobs()

    def test_unknown_fields_rejected(self):
        with pytest.raises(EvaluationError):
            EvaluationSpec.from_dict({"tools": ["p4"], "turbo": True})

    def test_with_replaces_axes(self):
        spec = EvaluationSpec()
        wider = spec.with_(platforms=("sun-ethernet", "alpha-fddi"))
        assert wider.platforms == ("sun-ethernet", "alpha-fddi")
        assert spec.platforms == ("sun-ethernet",)

    def test_noise_round_trips(self):
        spec = EvaluationSpec(noise=1.5, seeds=(0, 1))
        assert spec.to_dict()["noise"] == 1.5
        clone = EvaluationSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.noise == 1.5
        assert clone.jobs() == spec.jobs()

    def test_deterministic_spec_serializes_without_noise_field(self):
        """noise=0 must not change the on-disk spec format: old spec
        files and the golden fixtures predate the knob."""
        assert "noise" not in EvaluationSpec().to_dict()
        assert EvaluationSpec.from_dict(EvaluationSpec().to_dict()).noise == 0.0
