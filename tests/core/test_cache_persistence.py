"""Persistent-cache behavior end to end: resume, sharing, executors.

These are the durability guarantees the disk cache exists for: a
killed sweep re-launched over the same directory simulates only what
it never finished, and the cache is executor-agnostic — serial and
process-pool runs sharing one directory produce identical scores and
never duplicate a simulation.
"""

import pytest

from repro.core.cache import DiskBackend, ResultCache, ShardedBackend
from repro.core.scheduler import (
    JobTelemetry,
    ProcessPoolExecutor,
    Scheduler,
    SerialExecutor,
)
from repro.core.spec import EvaluationSpec
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


class TestSchedulerCacheOptions:
    def test_cache_options_are_exclusive(self, tmp_path):
        with pytest.raises(EvaluationError):
            Scheduler(cache=ResultCache(), cache_dir=str(tmp_path))
        with pytest.raises(EvaluationError):
            Scheduler(cache_backend=DiskBackend(str(tmp_path)),
                      cache_dir=str(tmp_path))

    def test_cache_backend_option(self, tmp_path):
        scheduler = Scheduler(cache_backend=DiskBackend(str(tmp_path)))
        assert isinstance(scheduler.cache.backend, DiskBackend)

    def test_retries_validated(self):
        with pytest.raises(EvaluationError):
            Scheduler(retries=0)


class TestKillAndResume:
    def test_resume_simulates_only_missing_jobs(self, tmp_path):
        """The acceptance scenario: a sweep interrupted partway and
        re-launched with the same cache dir finishes with
        ``simulations_run`` equal to exactly the missing jobs."""
        spec = tiny_spec(seeds=(0, 1, 2))
        cache_dir = str(tmp_path / "cache")

        interrupted = Scheduler(cache_dir=cache_dir)
        partial = spec.tpl_jobs("sun-ethernet", 0)
        interrupted.run_jobs(partial)
        assert interrupted.simulations_run == len(partial)

        # "New process": fresh Scheduler, fresh backend, same dir.
        resumed = Scheduler(cache_dir=cache_dir)
        result = resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - len(partial)
        assert resumed.cache.hits == len(partial)

        # And the multi-seed statistics the acceptance criteria ask
        # for: mean ±95% CI across the 3 seeds, rendered per cell.
        stats = result.seed_statistics()
        assert all(cell.n == 3 for cell in stats.values())
        assert "±" in result.comparison(stats=True)

        # A third launch re-simulates nothing at all.
        clean = Scheduler(cache_dir=cache_dir)
        clean.run(spec)
        assert clean.simulations_run == 0

    def test_crash_mid_batch_keeps_finished_jobs(self, tmp_path, monkeypatch):
        """Outcomes persist as they stream out of the executor, so a
        crash partway through ONE batch keeps every finished job —
        the relaunch simulates only from the point of death."""
        import repro.core.executors as executors_module

        spec = tiny_spec(tools=("p4",))
        jobs = spec.jobs()
        dies_at = jobs[3]
        real_execute = executors_module.execute_job

        def dying(job):
            if job == dies_at:
                raise OSError("killed")
            return real_execute(job)

        monkeypatch.setattr(executors_module, "execute_job", dying)
        cache_dir = str(tmp_path / "cache")
        crashed = Scheduler(cache_dir=cache_dir)
        with pytest.raises(OSError):
            crashed.run(spec)
        assert crashed.simulations_run == 3  # the finished prefix

        monkeypatch.setattr(executors_module, "execute_job", real_execute)
        resumed = Scheduler(cache_dir=cache_dir)
        resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - 3

    def test_sharded_resume(self, tmp_path):
        spec = tiny_spec(tools=("p4",))
        first = Scheduler(cache_dir=str(tmp_path), shards=4)
        first.run(spec)
        resumed = Scheduler(cache_dir=str(tmp_path), shards=4)
        resumed.run(spec)
        assert resumed.simulations_run == 0

    def test_shard_count_must_match_to_resume(self, tmp_path):
        """A different shard count is a different placement — the
        manifest turns the silent re-route (warm entries becoming
        misses, duplicates written) into a loud open-time error
        naming both counts."""
        spec = tiny_spec(tools=("p4",))
        Scheduler(cache_dir=str(tmp_path), shards=2).run(spec)
        with pytest.raises(EvaluationError, match=r"2 shard\(s\).*shards=3"):
            Scheduler(cache_dir=str(tmp_path), shards=3)
        # shards=None (the default) adopts the recorded roster and
        # resumes warm: zero duplicate simulations.
        adopted = Scheduler(cache_dir=str(tmp_path))
        adopted.run(spec)
        assert adopted.simulations_run == 0

    def test_flat_and_sharded_layouts_do_not_mix(self, tmp_path):
        spec = tiny_spec(tools=("p4",))
        warm = Scheduler(cache_dir=str(tmp_path))  # flat layout
        warm.run(spec)
        with pytest.raises(EvaluationError, match=r"1 shard\(s\).*shards=4"):
            Scheduler(cache_dir=str(tmp_path), shards=4)
        # Same count, different layout: a shard-00 directory is not a
        # flat one even though both route every key to one store.
        sharded_root = str(tmp_path / "sharded")
        ShardedBackend.on_disk(sharded_root, shards=1)
        with pytest.raises(EvaluationError, match="layout"):
            ResultCache.on_disk(sharded_root, shards=1)


class TestCrossExecutorDeterminism:
    def test_serial_and_pool_agree_through_shared_disk(self, tmp_path):
        """Same spec, same cache dir, different executors: identical
        scores and zero duplicate simulations on the second pass."""
        spec = tiny_spec(tools=("p4", "express"))
        cache_dir = str(tmp_path / "shared")

        serial = Scheduler(executor=SerialExecutor(), cache_dir=cache_dir)
        first = serial.run(spec)
        assert serial.simulations_run == spec.job_count()

        pooled = Scheduler(
            executor=ProcessPoolExecutor(max_workers=2), cache_dir=cache_dir
        )
        second = pooled.run(spec)
        assert pooled.simulations_run == 0  # zero duplicate simulations
        assert second.values == first.values
        assert second.report().scores() == first.report().scores()

    def test_pool_populates_serial_reads(self, tmp_path):
        spec = tiny_spec(tools=("p4",))
        cache_dir = str(tmp_path / "shared")
        pooled = Scheduler(
            executor=ProcessPoolExecutor(max_workers=2), cache_dir=cache_dir
        )
        first = pooled.run(spec)
        serial = Scheduler(cache_dir=cache_dir)
        second = serial.run(spec)
        assert serial.simulations_run == 0
        assert second.values == first.values


class TestTelemetry:
    def test_misses_then_hits_are_recorded(self):
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler()
        first = scheduler.run(spec)
        assert set(first.telemetry) == set(first.values)
        records = list(first.telemetry.values())
        assert all(isinstance(record, JobTelemetry) for record in records)
        assert all(not record.cache_hit for record in records)
        assert all(record.attempts == 1 for record in records)
        assert all(record.wall_seconds > 0.0 for record in records)
        assert all(record.executor == "serial" for record in records)

        second = scheduler.run(spec)
        assert all(record.cache_hit for record in second.telemetry.values())
        assert all(record.wall_seconds == 0.0 for record in second.telemetry.values())

    def test_telemetry_in_json_export(self):
        spec = tiny_spec(tools=("p4",))
        data = Scheduler().run(spec).to_dict()
        summary = data["telemetry"]["summary"]
        assert summary["simulated"] == spec.job_count()
        assert summary["cache_hits"] == 0
        assert summary["total_wall_seconds"] > 0.0
        assert summary["executors"] == ["serial"]
        assert len(data["telemetry"]["jobs"]) == spec.job_count()
        entry = data["telemetry"]["jobs"][0]
        assert {"kind", "tool", "executor", "cache_hit",
                "wall_seconds", "attempts"} <= set(entry)

    def test_pool_telemetry_reports_worker_timings(self):
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler(executor=ProcessPoolExecutor(max_workers=2))
        result = scheduler.run(spec)
        assert all(
            record.executor == "process-pool" and record.wall_seconds > 0.0
            for record in result.telemetry.values()
        )

    def test_uninstrumented_executor_still_works(self):
        """Custom executors with only ``run(jobs)`` predate telemetry:
        samples flow, wall time is honestly unknown."""

        class BareExecutor:
            def run(self, jobs):
                from repro.core.jobs import execute_job
                return [execute_job(job) for job in jobs]

        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler(executor=BareExecutor())
        result = scheduler.run(spec)
        assert result.values
        assert all(record.wall_seconds is None
                   for record in result.telemetry.values())
        assert result.to_dict()["telemetry"]["summary"]["total_wall_seconds"] == 0.0


class TestRetries:
    def test_flaky_job_retried_and_attempts_recorded(self, monkeypatch):
        import repro.core.executors as executors_module

        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return 1.0

        monkeypatch.setattr(executors_module, "execute_job", flaky)
        spec = tiny_spec(tools=("p4",))
        job = spec.jobs()[0]
        scheduler = Scheduler(retries=2)
        values = scheduler.run_jobs([job])
        assert values[job] == 1.0
        assert scheduler.telemetry[job].attempts == 2

    def test_exhausted_retries_raise(self, monkeypatch):
        import repro.core.executors as executors_module

        def broken(job):
            raise OSError("permanent")

        monkeypatch.setattr(executors_module, "execute_job", broken)
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler(retries=2)
        with pytest.raises(OSError):
            scheduler.run_jobs([spec.jobs()[0]])

    def test_evaluation_errors_never_retried(self, monkeypatch):
        import repro.core.executors as executors_module

        calls = {"n": 0}

        def misconfigured(job):
            calls["n"] += 1
            raise EvaluationError("bad config")

        monkeypatch.setattr(executors_module, "execute_job", misconfigured)
        spec = tiny_spec(tools=("p4",))
        with pytest.raises(EvaluationError):
            Scheduler(retries=5).run_jobs([spec.jobs()[0]])
        assert calls["n"] == 1
