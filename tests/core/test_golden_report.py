"""Golden-report regression net: scoring and serialization drift.

One small canonical spec is checked in next to the exact JSON export
it must produce (``tests/data/``).  Simulation is deterministic, so
any diff here is a behavior change — either a bug, or an intentional
change that must regenerate the fixture via
``scripts/regen_golden.py`` and justify the new numbers in review.
"""

import json
import os

import pytest

from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec

DATA_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "data")


@pytest.fixture(scope="module")
def golden_spec():
    with open(os.path.join(DATA_DIR, "golden_spec.json")) as handle:
        return EvaluationSpec.from_json(handle.read())


@pytest.fixture(scope="module")
def golden_report():
    with open(os.path.join(DATA_DIR, "golden_report.json")) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def actual(golden_spec):
    result = Scheduler().run(golden_spec)
    data = result.to_dict()
    data.pop("telemetry", None)  # wall times are machine-dependent
    # Round-trip through JSON so float representation matches what
    # the fixture file stores (a no-op for IEEE doubles, but it makes
    # the comparison an honest serialization check too).
    return json.loads(json.dumps(data, sort_keys=True))


class TestGoldenReport:
    def test_spec_fixture_is_valid_and_round_trips(self, golden_spec):
        assert golden_spec.job_count() == 30
        assert EvaluationSpec.from_json(golden_spec.to_json()) == golden_spec

    def test_no_sample_drift(self, actual, golden_report):
        assert actual["samples"] == golden_report["samples"]

    def test_no_score_drift(self, actual, golden_report):
        assert actual["scores"] == golden_report["scores"]

    def test_no_statistics_drift(self, actual, golden_report):
        assert actual["statistics"] == golden_report["statistics"]

    def test_no_new_or_dropped_export_fields(self, actual, golden_report):
        """A new top-level export key must be added to the fixture
        deliberately (regen script), not slipped in silently."""
        assert actual == golden_report
