"""Tests for the measurement runners (repro.core.measurements)."""

import pytest

from repro.core.measurements import (
    measure_application,
    measure_barrier,
    measure_broadcast,
    measure_global_sum,
    measure_ring,
    measure_sendrecv,
)


class TestPrimitiveRunners:
    def test_sendrecv_zero_bytes_positive_time(self):
        assert measure_sendrecv("p4", "sun-ethernet", 0) > 0

    def test_sendrecv_scales_with_size(self):
        small = measure_sendrecv("p4", "sun-ethernet", 1024)
        large = measure_sendrecv("p4", "sun-ethernet", 65536)
        assert large > 10 * small

    def test_broadcast_grows_with_processors(self):
        two = measure_broadcast("express", "sun-ethernet", 16384, processors=2)
        eight = measure_broadcast("express", "sun-ethernet", 16384, processors=8)
        assert eight > two

    def test_ring_needs_multiple_ranks(self):
        assert measure_ring("p4", "sun-ethernet", 1024, processors=2) > 0

    def test_global_sum_none_for_pvm(self):
        assert measure_global_sum("pvm", "sun-ethernet", 100) is None

    def test_global_sum_positive_for_p4(self):
        assert measure_global_sum("p4", "sun-ethernet", 100) > 0

    def test_barrier_positive(self):
        assert measure_barrier("pvm", "sun-atm-lan", processors=4) > 0

    def test_runs_are_independent(self):
        """Fresh platform per call: order of calls cannot matter."""
        a1 = measure_sendrecv("p4", "sun-ethernet", 4096)
        measure_sendrecv("express", "sun-ethernet", 65536)
        a2 = measure_sendrecv("p4", "sun-ethernet", 4096)
        assert a1 == a2


class TestApplicationRunner:
    def test_measure_application_with_params(self):
        elapsed = measure_application(
            "fft2d", "p4", "alpha-fddi", processors=2, size=32
        )
        assert elapsed > 0

    def test_check_flag_verifies(self):
        elapsed = measure_application(
            "montecarlo", "p4", "alpha-fddi", processors=2, check=True, samples=20_000
        )
        assert elapsed > 0

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            measure_application("skynet", "p4", "alpha-fddi", processors=2)

    def test_single_processor_allowed(self):
        elapsed = measure_application(
            "psrs", "p4", "alpha-fddi", processors=1, keys=2_000
        )
        assert elapsed > 0
