"""Scheduler, cache and ResultSet tests (tiny workloads throughout)."""

import pytest

from repro.core import evaluate_tools
from repro.core.scheduler import (
    ProcessPoolExecutor,
    ResultCache,
    Scheduler,
    SerialExecutor,
    create_executor,
)
from repro.core.spec import EvaluationSpec
from repro.core.weights import WeightProfile
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


class TestCache:
    def test_second_run_simulates_nothing(self):
        """Re-running an identical spec performs zero new simulations."""
        spec = tiny_spec()
        scheduler = Scheduler()
        first = scheduler.run(spec)
        simulated = scheduler.simulations_run
        assert simulated == spec.job_count()
        second = scheduler.run(spec)
        assert scheduler.simulations_run == simulated
        assert scheduler.cache.hits == spec.job_count()
        assert second.values == first.values

    def test_overlapping_specs_share_measurements(self):
        cache = ResultCache()
        narrow = tiny_spec(tools=("p4", "pvm"))
        wide = tiny_spec(tools=("p4", "pvm", "express"))
        Scheduler(cache=cache).run(narrow)
        scheduler = Scheduler(cache=cache)
        scheduler.run(wide)
        # Only express's share of the wide grid is new.
        assert scheduler.simulations_run == wide.job_count() - narrow.job_count()

    def test_cache_distinguishes_none_from_missing(self):
        """PVM's missing global sum caches as None, not as a miss."""
        spec = tiny_spec(tools=("pvm",))
        scheduler = Scheduler()
        result = scheduler.run(spec)
        gsum = [job for job in spec.jobs() if job.kind == "global_sum"]
        assert result.value(gsum[0]) is None
        before = scheduler.simulations_run
        scheduler.run(spec)
        assert scheduler.simulations_run == before


class TestExecutors:
    def test_create_executor(self):
        assert isinstance(create_executor(1), SerialExecutor)
        assert isinstance(create_executor(3), ProcessPoolExecutor)
        with pytest.raises(EvaluationError):
            create_executor(0)

    def test_create_executor_validates_early_with_clear_messages(self):
        """Bad --jobs style values fail here, before any spec
        expansion or pool construction, with actionable messages."""
        with pytest.raises(EvaluationError, match="got -2.*auto"):
            create_executor(-2)
        with pytest.raises(EvaluationError, match="positive integer or 'auto'"):
            create_executor(2.5)
        with pytest.raises(EvaluationError, match="positive integer or 'auto'"):
            create_executor(True)
        with pytest.raises(EvaluationError, match="unknown executor backend"):
            create_executor(2, backend="quantum")

    def test_create_executor_auto_and_backends(self):
        import os

        from repro.core.scheduler import AsyncExecutor, resolve_workers

        cpus = os.cpu_count() or 1
        assert resolve_workers("auto") == cpus
        assert resolve_workers(None) == cpus
        auto = create_executor("auto")
        if cpus == 1:
            assert isinstance(auto, SerialExecutor)
        else:
            assert isinstance(auto, ProcessPoolExecutor)
            assert auto.max_workers == cpus
        assert isinstance(create_executor(2, backend="serial"), SerialExecutor)
        assert isinstance(create_executor(1, backend="process"), ProcessPoolExecutor)
        asynchronous = create_executor(3, backend="async")
        assert isinstance(asynchronous, AsyncExecutor)
        assert asynchronous.max_workers == 3

    def test_serial_and_parallel_agree(self):
        """Simulations are deterministic, so the backend is invisible."""
        spec = tiny_spec(tools=("p4", "express"))
        serial = Scheduler(executor=SerialExecutor()).run(spec)
        with ProcessPoolExecutor(max_workers=2) as executor:
            parallel = Scheduler(executor=executor).run(spec)
        assert parallel.values == serial.values


class TestPersistentPool:
    def test_pool_is_reused_across_passes(self):
        """Repeated run calls must not pay process startup again."""
        executor = ProcessPoolExecutor(max_workers=2)
        try:
            spec_a = tiny_spec(tools=("p4",))
            spec_b = tiny_spec(tools=("express",))
            Scheduler(executor=executor).run(spec_a)
            pool = executor._pool
            assert pool is not None
            Scheduler(executor=executor).run(spec_b)
            assert executor._pool is pool
        finally:
            executor.close()

    def test_close_is_idempotent_and_allows_restart(self):
        executor = ProcessPoolExecutor(max_workers=2)
        jobs = tiny_spec(tools=("p4",)).jobs()[:2]
        first = executor.run(jobs)
        executor.close()
        assert executor._pool is None
        executor.close()  # no-op
        # A closed executor lazily builds a fresh pool on reuse.
        assert executor.run(jobs) == first
        executor.close()

    def test_context_manager_shuts_down(self):
        with ProcessPoolExecutor(max_workers=2) as executor:
            executor.run(tiny_spec(tools=("p4",)).jobs()[:2])
            assert executor._pool is not None
        assert executor._pool is None

    def test_scheduler_close_reaches_executor(self):
        with Scheduler(executor=ProcessPoolExecutor(max_workers=2)) as scheduler:
            scheduler.run_jobs(tiny_spec(tools=("p4",)).jobs()[:2])
            assert scheduler.executor._pool is not None
        assert scheduler.executor._pool is None

    def test_legacy_entry_points_delegate_to_submit(self):
        """`run` and `run_instrumented` are conveniences over the one
        protocol method — a subclass only ever implements submit."""
        from repro.core.scheduler import Executor, JobOutcome

        class Doubler(Executor):
            name = "doubler"

            def submit(self, jobs, retries=1):
                for job in jobs:
                    yield JobOutcome(2.0, 0.0, retries)

        executor = Doubler()
        jobs = tiny_spec(tools=("p4",)).jobs()[:3]
        assert executor.run(jobs) == [2.0, 2.0, 2.0]
        outcomes = list(executor.run_instrumented(jobs, retries=4))
        assert [outcome.attempts for outcome in outcomes] == [4, 4, 4]

    def test_broken_pool_is_dropped_not_reused(self):
        """A pool poisoned by a dead worker must not be served again:
        the failing pass raises, the next pass gets a fresh pool."""
        import concurrent.futures

        class BrokenPool(object):
            def map(self, *args, **kwargs):
                raise concurrent.futures.BrokenExecutor("worker died")

            def submit(self, *args, **kwargs):
                raise concurrent.futures.BrokenExecutor("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        executor = ProcessPoolExecutor(max_workers=2)
        jobs = tiny_spec(tools=("p4",)).jobs()[:2]
        try:
            executor._pool = BrokenPool()
            with pytest.raises(concurrent.futures.BrokenExecutor):
                executor.run(jobs)
            assert executor._pool is None  # poisoned pool dropped
            executor._pool = BrokenPool()
            with pytest.raises(concurrent.futures.BrokenExecutor):
                list(executor.run_instrumented(jobs))
            assert executor._pool is None
            # The next pass transparently builds a working pool.
            assert executor.run(jobs)
        finally:
            executor.close()


class TestAbandonedStream:
    """A consumer that stops early (islice, exception, ctrl-C) must
    not leave queued job chunks simulating in the pool forever."""

    @staticmethod
    def _executor_with_fake_pool(prefilled_chunks=1):
        """A ProcessPoolExecutor whose pool hands back real Futures:
        the first ``prefilled_chunks`` resolve immediately, the rest
        stay pending (as if workers were still busy)."""
        import concurrent.futures
        from repro.core.scheduler import JobOutcome

        executor = ProcessPoolExecutor(max_workers=2)
        submitted = []

        class FakePool(object):
            def submit(self, fn, chunk, retries):
                future = concurrent.futures.Future()
                if len(submitted) < prefilled_chunks:
                    future.set_result(
                        [JobOutcome(1.0, 0.0, 1) for _ in chunk]
                    )
                submitted.append(future)
                return future

            def shutdown(self, *args, **kwargs):
                pass

        executor._pool = FakePool()
        return executor, submitted

    def test_generator_close_cancels_queued_chunks(self):
        executor, submitted = self._executor_with_fake_pool()
        jobs = tiny_spec(tools=("p4", "pvm", "express")).jobs()
        stream = executor.run_instrumented(jobs)
        next(stream)  # consume one outcome, abandon the rest
        stream.close()
        # The window was filled (several chunks in flight) and every
        # chunk still queued behind the consumed one is cancelled.
        assert len(submitted) > 1
        assert all(future.cancelled() for future in submitted[1:])

    def test_exception_mid_sweep_cancels_queued_chunks(self):
        executor, submitted = self._executor_with_fake_pool()
        jobs = tiny_spec(tools=("p4", "pvm", "express")).jobs()
        stream = executor.run_instrumented(jobs)
        next(stream)
        with pytest.raises(RuntimeError):
            stream.throw(RuntimeError("consumer died mid-sweep"))
        assert all(future.cancelled() for future in submitted[1:])

    def test_exhausted_stream_cancels_nothing(self):
        """Normal completion leaves no pending futures to cancel."""
        with ProcessPoolExecutor(max_workers=2) as executor:
            jobs = tiny_spec(tools=("p4",)).jobs()[:3]
            outcomes = list(executor.run_instrumented(jobs))
        assert len(outcomes) == 3
        assert all(outcome.value is not None for outcome in outcomes)


class TestStreamingExpansion:
    def test_iter_jobs_matches_jobs(self):
        spec = tiny_spec(platforms=("sun-ethernet", "sun-atm-lan"), seeds=(0, 1))
        assert list(spec.iter_jobs()) == spec.jobs()
        assert spec.job_count() == len(spec.jobs())

    def test_run_jobs_accepts_lazy_iterable(self):
        """The job stream is consumed without materializing: results,
        cache counters and order match the list-based path."""
        spec = tiny_spec(tools=("p4",))
        eager = Scheduler()
        expected = eager.run_jobs(spec.jobs())

        pulled = []

        def stream():
            for job in spec.iter_jobs():
                pulled.append(job)
                yield job

        lazy = Scheduler()
        actual = lazy.run_jobs(stream())
        assert actual == expected
        assert list(actual) == list(expected)  # first-occurrence order kept
        assert pulled == spec.jobs()
        assert lazy.simulations_run == eager.simulations_run

    def test_short_executor_is_an_error(self):
        """An executor that drops outcomes cannot pass silently."""

        class Lossy(object):
            name = "lossy"

            def run(self, jobs):
                return [0.0 for job in jobs][:-1]

        scheduler = Scheduler(executor=Lossy())
        with pytest.raises(EvaluationError, match="too few"):
            scheduler.run_jobs(tiny_spec(tools=("p4",)).jobs()[:3])


class TestResultSet:
    @pytest.fixture(scope="class")
    def sweep(self):
        """The acceptance grid: 2 platforms x 3 tools x 2 profiles."""
        spec = tiny_spec(
            platforms=("sun-ethernet", "sun-atm-lan"),
            profiles=("balanced", "end-user"),
        )
        scheduler = Scheduler()
        return spec, scheduler, scheduler.run(spec)

    def test_profiles_rescore_from_one_measurement_pass(self, sweep):
        spec, scheduler, result = sweep
        assert scheduler.simulations_run == spec.job_count()
        reports = result.reports()
        assert set(reports) == {
            (platform, profile, 0)
            for platform in ("sun-ethernet", "sun-atm-lan")
            for profile in ("balanced", "end-user")
        }
        # Scoring four report cells triggered no further simulation.
        assert scheduler.simulations_run == spec.job_count()

    def test_reweighting_changes_overall_not_levels(self, sweep):
        _, _, result = sweep
        balanced = result.report("sun-ethernet", "balanced")
        end_user = result.report("sun-ethernet", "end-user")
        for tool in balanced.scores():
            assert balanced.scores()[tool]["tpl"] == end_user.scores()[tool]["tpl"]
        assert any(
            balanced.scores()[tool]["overall"] != end_user.scores()[tool]["overall"]
            for tool in balanced.scores()
        )

    def test_out_of_spec_profile_is_still_free(self, sweep):
        from repro.core.levels import ADL, APL, TPL

        spec, scheduler, result = sweep
        custom = WeightProfile("adl-heavy", {TPL: 0.1, APL: 0.1, ADL: 0.8})
        report = result.report("sun-atm-lan", custom)
        assert report.profile is custom
        assert scheduler.simulations_run == spec.job_count()

    def test_report_shape_matches_classic_evaluator(self, sweep):
        _, _, result = sweep
        classic = evaluate_tools(platform="sun-ethernet", **_TINY)
        modern = result.report("sun-ethernet", "balanced")
        assert modern.scores() == classic.scores()
        assert modern.ranking() == classic.ranking()

    def test_unknown_cell_rejected(self, sweep):
        _, _, result = sweep
        with pytest.raises(EvaluationError):
            result.report("alpha-fddi")
        with pytest.raises(EvaluationError):
            result.report("sun-ethernet", "tool-developer")
        with pytest.raises(EvaluationError):
            result.report("sun-ethernet", "balanced", seed=99)

    def test_comparison_table_covers_grid(self, sweep):
        _, _, result = sweep
        text = result.comparison()
        for token in ("sun-ethernet/balanced", "sun-atm-lan/end-user", "p4"):
            assert token in text

    def test_nonzero_seed_specs_reconstruct(self):
        """Set reconstruction defaults to the spec's seeds, not 0."""
        spec = tiny_spec(tools=("p4",), seeds=(42,))
        result = Scheduler().run(spec)
        assert [s.name for s in result.tpl_sets("sun-ethernet")]
        assert [s.name for s in result.apl_sets("sun-ethernet")] == ["montecarlo"]
        with pytest.raises(EvaluationError):
            result.tpl_sets("sun-ethernet", seed=0)

    def test_json_export(self, sweep, tmp_path):
        import json

        spec, _, result = sweep
        path = tmp_path / "sweep.json"
        result.to_json(str(path))
        data = json.loads(path.read_text())
        assert data["spec"] == spec.to_dict()
        assert len(data["samples"]) == spec.job_count()
        assert "sun-atm-lan/end-user/seed0" in data["scores"]


class TestEvaluatorShim:
    def test_repeated_runs_reuse_measurements(self):
        from repro.core import Evaluator, PRESET_PROFILES

        evaluator = Evaluator("sun-ethernet", **_TINY)
        evaluator.run()
        simulated = evaluator._scheduler.simulations_run
        evaluator.run(PRESET_PROFILES["end-user"])
        evaluator.measure_tpl()
        evaluator.measure_apl()
        assert evaluator._scheduler.simulations_run == simulated

    def test_config_views_are_copies(self):
        """Mutating the compat attributes cannot desync the spec."""
        from repro.core import Evaluator

        evaluator = Evaluator("sun-ethernet", **_TINY)
        evaluator.app_params["montecarlo"]["samples"] = 10**9
        evaluator.tools.append("mpi")
        assert evaluator.app_params["montecarlo"]["samples"] == 5_000
        assert evaluator.tools == ["express", "p4", "pvm"]

    def test_measure_tpl_does_not_simulate_applications(self):
        from repro.core import Evaluator

        evaluator = Evaluator("sun-ethernet", **_TINY)
        sets = evaluator.measure_tpl()
        assert sets
        tpl_jobs = evaluator._spec.tpl_jobs("sun-ethernet", 0)
        assert evaluator._scheduler.simulations_run == len(tpl_jobs)
