"""Streaming execution: RunHandle events, progress, cancel, resume.

The contract under test: ``Scheduler.start(spec)`` narrates the run
as typed events while it executes in the background, ``cancel()`` is
cooperative (in-flight work finishes and persists, queued work is
dropped), and a cancelled or interrupted run resumed over the same
cache simulates only the jobs it never finished — exactly like a
killed sweep.
"""

import threading

import pytest

from repro.core.cache import DiskBackend
from repro.core.progress import (
    CacheHit,
    JobFinished,
    JobStarted,
    Progress,
    RunCompleted,
)
from repro.core.scheduler import (
    AsyncExecutor,
    Executor,
    JobOutcome,
    ProcessPoolExecutor,
    RunHandle,
    Scheduler,
)
from repro.core.spec import EvaluationSpec
from repro.errors import EvaluationError, RunCancelled

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    kwargs = dict(_TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


class GateExecutor(Executor):
    """Submits nothing until released — deterministic in-flight state
    for timeout/cancel tests (the shape a remote backend would have)."""

    name = "gate"

    def __init__(self):
        self.release = threading.Event()

    def submit(self, jobs, retries=1):
        for job in jobs:
            self.release.wait()
            yield JobOutcome(1.0, 0.001, 1)


class TestEventStream:
    def test_cold_run_events_in_order(self):
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler()
        handle = scheduler.start(spec)
        events = list(handle.events())
        result = handle.result()

        jobs = spec.jobs()
        started = [event for event in events if isinstance(event, JobStarted)]
        finished = [event for event in events if isinstance(event, JobFinished)]
        assert [event.job for event in started] == jobs
        assert [event.index for event in started] == list(range(len(jobs)))
        assert [event.job for event in finished] == jobs
        assert all(event.wall_seconds > 0.0 for event in finished)
        assert {event.job: event.value for event in finished} == result.values

        completed = events[-1]
        assert isinstance(completed, RunCompleted)
        assert completed.total == completed.simulated == len(jobs)
        assert completed.cache_hits == 0
        assert not completed.cancelled
        assert completed.wall_seconds > 0.0

    def test_warm_run_is_all_cache_hits(self):
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler()
        scheduler.run(spec)
        handle = scheduler.start(spec)
        events = list(handle.events())
        hits = [event for event in events if isinstance(event, CacheHit)]
        assert [event.job for event in hits] == spec.jobs()
        assert not any(isinstance(event, JobStarted) for event in events)
        assert events[-1].cache_hits == spec.job_count()
        assert events[-1].simulated == 0
        handle.result()

    def test_multiple_event_iterators_see_the_full_stream(self):
        spec = tiny_spec(tools=("p4",))
        handle = Scheduler().start(spec)
        first = list(handle.events())
        second = list(handle.events())  # late subscriber replays all
        assert first == second
        handle.result()

    def test_two_concurrent_consumers_slow_and_fast(self):
        """Two live consumers — one dawdling, one draining as fast as
        it can — each see the identical, complete stream.  The
        service's SSE layer runs one such consumer per connected
        client, so multi-consumer replay under concurrency is part of
        its contract, not an accident."""
        import time

        spec = tiny_spec(tools=("p4", "express"))
        executor = GateExecutor()
        scheduler = Scheduler(executor=executor)
        handle = scheduler.start(spec)
        streams = {}

        def consume(name, delay):
            seen = []
            for event in handle.events():
                seen.append(event)
                if delay:
                    time.sleep(delay)
            streams[name] = seen

        slow = threading.Thread(target=consume, args=("slow", 0.005))
        fast = threading.Thread(target=consume, args=("fast", 0.0))
        slow.start()
        fast.start()
        executor.release.set()  # events start flowing mid-subscription
        slow.join(30)
        fast.join(30)
        assert not slow.is_alive() and not fast.is_alive()

        assert streams["slow"] == streams["fast"]
        events = streams["fast"]
        assert isinstance(events[-1], RunCompleted)
        finished = [event for event in events if isinstance(event, JobFinished)]
        assert [event.job for event in finished] == spec.jobs()
        # A third, post-hoc subscriber still replays the whole run.
        assert list(handle.events()) == events
        handle.result()

    def test_unbuffered_runs_keep_no_event_log(self):
        """Blocking run()/run_jobs skip the replay buffer (no consumer
        can exist), so huge grids stay at O(1) event memory; the
        counters, callback and result are unaffected."""
        spec = tiny_spec(tools=("p4",))
        seen = []
        handle = Scheduler().start(spec, on_event=seen.append, buffer_events=False)
        with pytest.raises(EvaluationError, match="does not buffer"):
            next(handle.events())
        result = handle.result()
        assert handle._events == []
        assert len(seen) == 2 * spec.job_count() + 1
        assert handle.progress().simulated == spec.job_count()
        assert result.values

    def test_on_event_callback_fires_for_every_event(self):
        spec = tiny_spec(tools=("p4",))
        seen = []
        result = Scheduler().run(spec, on_event=seen.append)
        assert len(seen) == 2 * spec.job_count() + 1
        assert isinstance(seen[-1], RunCompleted)
        assert result.values


class TestProgress:
    def test_final_snapshot(self):
        spec = tiny_spec(tools=("p4",))
        handle = Scheduler().start(spec)
        handle.result()
        snapshot = handle.progress()
        assert isinstance(snapshot, Progress)
        assert snapshot.finished and not snapshot.cancelled
        assert snapshot.total == snapshot.completed == spec.job_count()
        assert snapshot.simulated == spec.job_count()
        assert snapshot.remaining == 0
        assert snapshot.hit_rate == 0.0
        assert snapshot.eta_seconds == 0.0
        assert "done" in snapshot.render()

    def test_mid_run_snapshot_has_eta(self):
        executor = GateExecutor()
        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler(executor=executor)
        handle = scheduler.start(spec)
        events = handle.events()
        executor.release.set()
        next(event for event in events if isinstance(event, JobFinished))
        snapshot = handle.progress()
        assert snapshot.total == spec.job_count()
        assert snapshot.completed >= 1
        if not snapshot.finished:
            assert snapshot.eta_seconds is not None
        handle.result()

    def test_unknown_total_renders(self):
        progress = Progress(
            total=None, dispatched=2, completed=1, simulated=1, cache_hits=0,
            elapsed_seconds=0.5, cancelled=False, finished=False,
        )
        assert progress.remaining is None
        assert progress.eta_seconds is None
        assert "1/? jobs" in progress.render()

    def test_hit_rate(self):
        progress = Progress(
            total=10, dispatched=2, completed=4, simulated=1, cache_hits=3,
            elapsed_seconds=1.0, cancelled=False, finished=False,
        )
        assert progress.hit_rate == 0.75
        assert progress.remaining == 6
        # The rate is per *simulated* job: 1 sim in 1.0s -> 6 ahead.
        assert progress.eta_seconds == pytest.approx(6.0)

    def test_eta_ignores_fast_cache_hits(self):
        """A resumed sweep serving hits first must not extrapolate the
        hit-serving rate onto the simulations still ahead."""
        resumed = Progress(
            total=200, dispatched=0, completed=100, simulated=0, cache_hits=100,
            elapsed_seconds=0.1, cancelled=False, finished=False,
        )
        pure_hit_eta = resumed.eta_seconds  # all hits so far: best guess
        assert pure_hit_eta == pytest.approx(0.1)
        simulating = Progress(
            total=200, dispatched=1, completed=101, simulated=1, cache_hits=100,
            elapsed_seconds=1.1, cancelled=False, finished=False,
        )
        # One 1s simulation done, 99 to go: the ETA must be ~99s, not
        # the ~1s a completed-based rate would claim.
        assert simulating.eta_seconds == pytest.approx(1.1 * 99)


class TestWrapperEquivalence:
    def test_run_matches_start_result(self):
        spec = tiny_spec(tools=("p4", "express"))
        via_run = Scheduler().run(spec)
        handle = Scheduler().start(spec)
        via_handle = handle.result()
        assert via_handle.values == via_run.values
        assert via_handle.report().scores() == via_run.report().scores()

    def test_run_jobs_returns_plain_dict(self):
        spec = tiny_spec(tools=("p4",))
        jobs = spec.jobs()[:3]
        values = Scheduler().run_jobs(jobs)
        assert list(values) == jobs  # first-occurrence order kept
        handle_values = Scheduler().start_jobs(jobs).result()
        assert handle_values == values

    def test_start_jobs_sizes_total_when_it_can(self):
        spec = tiny_spec(tools=("p4",))
        jobs = spec.jobs()[:3]
        sized = Scheduler().start_jobs(jobs)
        assert sized.progress().total == 3
        sized.result()
        lazy = Scheduler().start_jobs(iter(jobs))
        assert lazy.progress().total is None
        lazy.result()

    def test_worker_exceptions_propagate_from_result(self, monkeypatch):
        import repro.core.executors as executors_module

        def broken(job):
            raise OSError("permanent")

        monkeypatch.setattr(executors_module, "execute_job", broken)
        spec = tiny_spec(tools=("p4",))
        with pytest.raises(OSError, match="permanent"):
            Scheduler().run(spec)

    def test_result_timeout_raises_without_killing_the_run(self):
        executor = GateExecutor()
        spec = tiny_spec(tools=("p4",))
        handle = Scheduler(executor=executor).start(spec)
        with pytest.raises(EvaluationError, match="still executing"):
            handle.result(timeout=0.05)
        assert handle.running and not handle.cancelled
        executor.release.set()
        assert handle.result().values  # completes normally afterwards


class TestCancel:
    def _start_and_cancel_after(self, scheduler, spec, finished_jobs):
        handle = scheduler.start(spec)
        finished = 0
        for event in handle.events():
            if isinstance(event, JobFinished):
                finished += 1
                if finished == finished_jobs:
                    handle.cancel()
        return handle

    def test_cancel_mid_run_drops_queued_keeps_finished(self, tmp_path):
        spec = tiny_spec()  # 15 jobs
        cache_dir = str(tmp_path / "cache")
        scheduler = Scheduler(cache_dir=cache_dir)
        handle = self._start_and_cancel_after(scheduler, spec, finished_jobs=3)

        with pytest.raises(RunCancelled, match="re-run the spec"):
            handle.result()
        snapshot = handle.progress()
        assert snapshot.cancelled and snapshot.finished
        assert 3 <= snapshot.simulated < spec.job_count()
        # Every finished job persisted; nothing else did.
        assert len(DiskBackend(cache_dir)) == snapshot.simulated
        # The partial values carry exactly the completed jobs.
        values = handle.values()
        assert len(values) == snapshot.simulated
        assert all(value is not None for value in values.values())

    def test_cancelled_run_resumes_like_a_killed_one(self, tmp_path):
        """The acceptance scenario: resume over the same --cache-dir
        simulates only the jobs the cancelled run never finished."""
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        first = Scheduler(cache_dir=cache_dir)
        handle = self._start_and_cancel_after(first, spec, finished_jobs=2)
        with pytest.raises(RunCancelled):
            handle.result()
        done = handle.progress().simulated

        resumed = Scheduler(cache_dir=cache_dir)
        result = resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - done
        assert resumed.cache.hits == done
        assert len(result.values) == spec.job_count()

    def test_cancel_after_completion_is_a_noop(self):
        spec = tiny_spec(tools=("p4",))
        handle = Scheduler().start(spec)
        result = handle.result()
        handle.cancel()
        assert not handle.cancelled
        assert handle.result().values == result.values

    def test_cancelled_event_stream_terminates_with_cancelled_completion(self):
        spec = tiny_spec()
        scheduler = Scheduler()
        handle = self._start_and_cancel_after(scheduler, spec, finished_jobs=1)
        events = list(handle.events())
        assert isinstance(events[-1], RunCompleted)
        assert events[-1].cancelled

    def test_cancel_with_async_backend(self, tmp_path):
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        with Scheduler(
            executor=AsyncExecutor(max_workers=2), cache_dir=cache_dir
        ) as scheduler:
            handle = self._start_and_cancel_after(scheduler, spec, finished_jobs=2)
            with pytest.raises(RunCancelled):
                handle.result()
            done = handle.progress().simulated
        assert 2 <= done < spec.job_count()
        resumed = Scheduler(cache_dir=cache_dir)
        resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - done

    def test_cancelled_custom_backend_dropping_queued_jobs_is_tolerated(self):
        """A backend that drops queued work on cancel must not leave
        ``None`` reservations masquerading as samples."""

        class Droppy(Executor):
            name = "droppy"

            def submit(self, jobs, retries=1):
                jobs = list(jobs)  # drains misses(); cancel arrives first
                yield JobOutcome(1.0, 0.001, 1)  # then drops the rest

        spec = tiny_spec(tools=("p4",))
        scheduler = Scheduler(executor=Droppy())
        handle = scheduler.start(spec)
        handle.cancel()  # observed while the executor drains the stream
        handle.wait()
        if handle.cancelled:
            values = handle.values()
            assert all(value is not None for value in values.values())


class TestInterruptFlush:
    def test_interrupt_from_a_job_keeps_finished_prefix(self, tmp_path, monkeypatch):
        """KeyboardInterrupt raised mid-batch (ctrl-C landing in a
        simulation) must not lose outcomes that already streamed out:
        the relaunch simulates only from the point of interrupt."""
        import repro.core.executors as executors_module

        spec = tiny_spec(tools=("p4",))
        jobs = spec.jobs()
        real_execute = executors_module.execute_job

        def interrupted(job):
            if job == jobs[3]:
                raise KeyboardInterrupt
            return real_execute(job)

        monkeypatch.setattr(executors_module, "execute_job", interrupted)
        cache_dir = str(tmp_path / "cache")
        scheduler = Scheduler(cache_dir=cache_dir)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(spec)
        assert scheduler.simulations_run == 3
        assert len(DiskBackend(cache_dir)) == 3

        monkeypatch.setattr(executors_module, "execute_job", real_execute)
        resumed = Scheduler(cache_dir=cache_dir)
        resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - 3

    def test_interrupt_while_waiting_cancels_and_flushes(self, tmp_path):
        """Ctrl-C in the *waiting* thread: result() cancels the run
        cooperatively and joins the worker, so every outcome produced
        before (and during) the interrupt is on disk when the
        KeyboardInterrupt reaches the caller."""
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        scheduler = Scheduler(cache_dir=cache_dir)
        handle = scheduler.start(spec)
        handle.wait = lambda timeout=None: (_ for _ in ()).throw(KeyboardInterrupt)
        with pytest.raises(KeyboardInterrupt):
            handle.result()
        assert not handle._thread.is_alive()  # worker joined: flushed
        done = handle.progress().simulated
        assert len(DiskBackend(cache_dir)) == done

        resumed = Scheduler(cache_dir=cache_dir)
        resumed.run(spec)
        assert resumed.simulations_run == spec.job_count() - done


class TestPoolStreaming:
    def test_pool_backed_run_streams_and_persists(self, tmp_path):
        spec = tiny_spec(tools=("p4",))
        cache_dir = str(tmp_path / "cache")
        with Scheduler(
            executor=ProcessPoolExecutor(max_workers=2), cache_dir=cache_dir
        ) as scheduler:
            handle = scheduler.start(spec)
            events = list(handle.events())
            result = handle.result()
        assert events[-1].simulated == spec.job_count()
        assert result.values == Scheduler().run(spec).values
        assert len(DiskBackend(cache_dir)) == spec.job_count()
