"""Unit tests for the cache storage stack (memory, disk, sharded)."""

import json
import os

import pytest

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    MISSING,
    DiskBackend,
    MemoryBackend,
    ResultCache,
    ShardedBackend,
    job_key,
)
from repro.core.jobs import application_job, sendrecv_job
from repro.errors import EvaluationError

JOB = sendrecv_job("p4", "sun-ethernet", 1024)
OTHER = sendrecv_job("pvm", "sun-ethernet", 1024)


class TestJobKey:
    def test_stable_and_content_addressed(self):
        assert job_key(JOB) == job_key(sendrecv_job("p4", "sun-ethernet", 1024))
        assert job_key(JOB) != job_key(OTHER)
        assert len(job_key(JOB)) == 64
        int(job_key(JOB), 16)  # hex

    def test_param_order_is_canonical(self):
        left = application_job("montecarlo", "p4", "sun-ethernet", 4, samples=10, chunk=2)
        right = application_job("montecarlo", "p4", "sun-ethernet", 4, chunk=2, samples=10)
        assert job_key(left) == job_key(right)


class TestMemoryBackend:
    def test_get_put_contains_len_clear(self):
        backend = MemoryBackend()
        key = job_key(JOB)
        assert backend.get(key) is MISSING
        assert key not in backend
        backend.put(key, 1.5, JOB)
        assert backend.get(key) == 1.5
        assert key in backend and len(backend) == 1
        backend.clear()
        assert backend.get(key) is MISSING and len(backend) == 0

    def test_none_sample_is_not_missing(self):
        backend = MemoryBackend()
        backend.put("k", None)
        assert backend.get("k") is None
        assert "k" in backend


class TestDiskBackend:
    def test_round_trip_survives_reopen(self, tmp_path):
        key = job_key(JOB)
        DiskBackend(str(tmp_path)).put(key, 0.25, JOB)
        fresh = DiskBackend(str(tmp_path))
        assert fresh.get(key) == 0.25
        assert len(fresh) == 1
        assert fresh.keys() == [key]

    def test_none_sample_round_trips(self, tmp_path):
        key = job_key(JOB)
        DiskBackend(str(tmp_path)).put(key, None, JOB)
        assert DiskBackend(str(tmp_path)).get(key) is None

    def test_entries_reconstruct_jobs(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put(job_key(JOB), 0.25, JOB)
        backend.put(job_key(OTHER), 0.5, OTHER)
        entries = dict(DiskBackend(str(tmp_path)).entries())
        assert entries == {JOB: 0.25, OTHER: 0.5}

    def test_stale_schema_reads_as_miss(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        key = job_key(JOB)
        backend.put(key, 0.25, JOB)
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        entry = json.load(open(path))
        entry["schema"] = CACHE_SCHEMA_VERSION - 1
        with open(path, "w") as handle:
            json.dump(entry, handle)
        fresh = DiskBackend(str(tmp_path))
        assert fresh.get(key) is MISSING
        assert list(fresh.entries()) == []
        # len/keys agree with get: a drained stale directory is empty.
        assert len(fresh) == 0
        assert fresh.keys() == []

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        key = job_key(JOB)
        backend.put(key, 0.25, JOB)
        path = os.path.join(str(tmp_path), key[:2], key + ".json")
        with open(path, "w") as handle:
            handle.write("{not json")
        fresh = DiskBackend(str(tmp_path))
        assert fresh.get(key) is MISSING
        assert list(fresh.entries()) == []

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "empty"])
    def test_torn_entry_is_a_miss_everywhere(self, tmp_path, damage):
        """A torn write (truncated JSON, binary garbage, empty file)
        must read as a miss through *every* read surface — get, keys,
        entries and len — never as an exception or a phantom entry."""
        backend = DiskBackend(str(tmp_path))
        torn_key = job_key(JOB)
        backend.put(torn_key, 0.25, JOB)
        backend.put(job_key(OTHER), 0.5, OTHER)
        path = os.path.join(str(tmp_path), torn_key[:2], torn_key + ".json")
        if damage == "truncate":
            whole = open(path).read()
            with open(path, "w") as handle:
                handle.write(whole[: len(whole) // 2])
        elif damage == "garbage":
            with open(path, "wb") as handle:
                handle.write(b"\x00\xff\x13garbage")
        else:
            open(path, "w").close()
        fresh = DiskBackend(str(tmp_path))
        assert fresh.get(torn_key) is MISSING
        assert fresh.keys() == [job_key(OTHER)]
        assert dict(fresh.entries()) == {OTHER: 0.5}
        assert len(fresh) == 1

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        """A writer killed between mkstemp and os.replace leaves a
        *.tmp behind; clear() must take it along with the entries."""
        backend = DiskBackend(str(tmp_path))
        key = job_key(JOB)
        backend.put(key, 0.25, JOB)
        orphan = os.path.join(str(tmp_path), key[:2], "tmp_dead_writer.tmp")
        with open(orphan, "w") as handle:
            handle.write('{"schema":')  # torn, as a real kill leaves it
        backend.clear()
        assert not os.path.exists(orphan)
        assert len(DiskBackend(str(tmp_path))) == 0

    def test_open_sweeps_stale_tmp_but_spares_fresh_ones(self, tmp_path):
        """Opening a cache directory removes tmp litter old enough to
        be orphaned, but never a concurrent writer's in-flight file."""
        backend = DiskBackend(str(tmp_path))
        key = job_key(JOB)
        backend.put(key, 0.25, JOB)
        bucket = os.path.join(str(tmp_path), key[:2])
        stale = os.path.join(bucket, "tmp_stale.tmp")
        fresh = os.path.join(bucket, "tmp_fresh.tmp")
        for path in (stale, fresh):
            open(path, "w").close()
        long_ago = os.path.getmtime(stale) - 2 * DiskBackend.STALE_TMP_SECONDS
        os.utime(stale, (long_ago, long_ago))
        reopened = DiskBackend(str(tmp_path))
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)  # in-flight writer unharmed
        assert reopened.get(key) == 0.25  # entries untouched

    def test_write_is_atomic_no_temp_droppings(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        for index in range(8):
            backend.put(job_key(sendrecv_job("p4", "sun-ethernet", 1024, seed=index)),
                        float(index))
        leftovers = [
            name
            for _, _, names in os.walk(str(tmp_path))
            for name in names
            if not name.endswith(".json")
        ]
        assert leftovers == []

    def test_clear_removes_entries(self, tmp_path):
        backend = DiskBackend(str(tmp_path))
        backend.put(job_key(JOB), 0.25, JOB)
        backend.clear()
        assert len(backend) == 0
        assert DiskBackend(str(tmp_path)).get(job_key(JOB)) is MISSING


class TestShardedBackend:
    def test_needs_children(self):
        with pytest.raises(EvaluationError):
            ShardedBackend([])
        with pytest.raises(EvaluationError):
            ShardedBackend.on_disk("unused", shards=0)

    def test_routes_to_exactly_one_memory_shard(self):
        backend = ShardedBackend([MemoryBackend() for _ in range(4)])
        key = job_key(JOB)
        backend.put(key, 0.25, JOB)
        holders = [child for child in backend.backends if key in child]
        assert len(holders) == 1
        assert holders[0] is backend.backends[backend.shard_index(key)]
        assert backend.get(key) == 0.25
        assert len(backend) == 1

    def test_disk_shards_share_a_root(self, tmp_path):
        backend = ShardedBackend.on_disk(str(tmp_path), shards=3)
        keys = [job_key(sendrecv_job("p4", "sun-ethernet", 1024, seed=s))
                for s in range(12)]
        for index, key in enumerate(keys):
            backend.put(key, float(index))
        assert sorted(os.listdir(str(tmp_path))) == [
            "manifest.json", "shard-00", "shard-01", "shard-02"]
        reopened = ShardedBackend.on_disk(str(tmp_path), shards=3)
        assert [reopened.get(key) for key in keys] == [float(i) for i in range(12)]
        assert len(reopened) == 12


class TestResultCache:
    def test_default_backend_is_memory(self):
        assert isinstance(ResultCache().backend, MemoryBackend)

    def test_hit_miss_counters(self):
        cache = ResultCache()
        assert cache.lookup(JOB) is MISSING
        cache.store(JOB, 1.0)
        assert cache.lookup(JOB) == 1.0
        assert (cache.hits, cache.misses) == (1, 1)
        assert JOB in cache and OTHER not in cache

    def test_peek_raises_and_leaves_counters(self):
        cache = ResultCache()
        with pytest.raises(KeyError):
            cache.peek(JOB)
        cache.store(JOB, None)
        assert cache.peek(JOB) is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_on_disk_factory(self, tmp_path):
        single = ResultCache.on_disk(str(tmp_path / "one"))
        assert isinstance(single.backend, DiskBackend)
        sharded = ResultCache.on_disk(str(tmp_path / "many"), shards=2)
        assert isinstance(sharded.backend, ShardedBackend)
        assert len(sharded.backend.backends) == 2
        with pytest.raises(EvaluationError):
            ResultCache.on_disk(str(tmp_path), shards=0)

    def test_clear_resets_store_and_counters(self, tmp_path):
        cache = ResultCache.on_disk(str(tmp_path))
        cache.store(JOB, 1.0)
        cache.lookup(JOB)
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)
        assert cache.lookup(JOB) is MISSING


class TestConcurrentAccess:
    """One shared cache, many concurrent scheduler runs — the shape
    the evaluation service creates.  The counters and the dict access
    are guarded by a lock; these tests pin that ``hits + misses``
    never loses an increment under contention."""

    def _hammer(self, worker, threads):
        import sys
        import threading

        errors = []

        def wrapped(index):
            try:
                worker(index)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        # Shrink the bytecode switch interval so an unguarded
        # read-modify-write on the counters would actually interleave.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            pool = [threading.Thread(target=wrapped, args=(index,))
                    for index in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert errors == []

    def test_shared_counters_survive_concurrent_hits(self):
        threads, rounds = 8, 400
        cache = ResultCache()
        jobs = [sendrecv_job("p4", "sun-ethernet", 1024, seed=s) for s in range(4)]
        for job in jobs:
            cache.store(job, 1.0)

        def worker(index):
            for _ in range(rounds):
                for job in jobs:
                    assert cache.lookup(job) == 1.0

        self._hammer(worker, threads)
        assert cache.hits == threads * rounds * len(jobs)
        assert cache.misses == 0

    def test_disjoint_miss_store_hit_cycles_account_exactly(self):
        """Each thread owns a disjoint job slice (distinct seeds, like
        concurrent service runs over different specs): every lookup is
        counted exactly once, and every store lands."""
        threads, per_thread = 8, 50
        cache = ResultCache()

        def worker(index):
            jobs = [sendrecv_job("p4", "sun-ethernet", 1024,
                                 seed=index * per_thread + offset)
                    for offset in range(per_thread)]
            for job in jobs:
                assert cache.lookup(job) is MISSING
                cache.store(job, float(index))
            for job in jobs:
                assert cache.lookup(job) == float(index)

        self._hammer(worker, threads)
        assert cache.misses == threads * per_thread
        assert cache.hits == threads * per_thread
        assert len(cache) == threads * per_thread

    def test_memory_backend_concurrent_put_get(self):
        threads, per_thread = 8, 200
        backend = MemoryBackend()

        def worker(index):
            keys = ["%02d-%04d" % (index, offset) for offset in range(per_thread)]
            for offset, key in enumerate(keys):
                backend.put(key, float(offset))
            for offset, key in enumerate(keys):
                assert backend.get(key) == float(offset)

        self._hammer(worker, threads)
        assert len(backend) == threads * per_thread

    @pytest.mark.parametrize("make_backend", [
        lambda root: DiskBackend(root),
        lambda root: ShardedBackend.on_disk(root, shards=3),
    ], ids=["disk", "sharded"])
    def test_disk_backends_concurrent_put_get(self, tmp_path, make_backend):
        """`repro serve --cache-dir` shares one disk-backed store
        across concurrent runs; the read-through memo must not tear."""
        threads, per_thread = 8, 40
        backend = make_backend(str(tmp_path))

        def worker(index):
            keys = [job_key(sendrecv_job("p4", "sun-ethernet", 1024,
                                         seed=index * per_thread + offset))
                    for offset in range(per_thread)]
            for offset, key in enumerate(keys):
                backend.put(key, float(offset))
            for offset, key in enumerate(keys):
                assert backend.get(key) == float(offset)

        self._hammer(worker, threads)
        assert len(backend) == threads * per_thread

    def test_disk_backend_concurrent_same_keys(self, tmp_path):
        """Every thread reads and re-writes the *same* keys — the
        worst case for an unguarded memo dict (read-through inserts
        racing writes), and a harmless one for the entry files
        themselves (deterministic values, atomic replace)."""
        threads, rounds = 8, 60
        backend = DiskBackend(str(tmp_path))
        keys = [job_key(sendrecv_job("p4", "sun-ethernet", 1024, seed=s))
                for s in range(4)]
        for offset, key in enumerate(keys):
            backend.put(key, float(offset))

        def worker(index):
            for _ in range(rounds):
                for offset, key in enumerate(keys):
                    assert backend.get(key) == float(offset)
                    backend.put(key, float(offset))

        self._hammer(worker, threads)
        assert [backend.get(key) for key in keys] == [0.0, 1.0, 2.0, 3.0]

    def test_peek_is_counter_neutral_under_concurrency(self, tmp_path):
        """peek() now goes through the cache lock: hammering it while
        lookups run must leave hits + misses == lookup calls exactly."""
        threads, rounds = 8, 150
        cache = ResultCache.on_disk(str(tmp_path))
        cache.store(JOB, 1.0)

        def worker(index):
            for _ in range(rounds):
                if index % 2:
                    assert cache.peek(JOB) == 1.0
                else:
                    assert cache.lookup(JOB) == 1.0

        self._hammer(worker, threads)
        lookup_threads = threads // 2
        assert cache.hits == lookup_threads * rounds
        assert cache.misses == 0


class TestCacheManifest:
    """The shard roster is part of the on-disk layout; reopening with
    a different one must fail loudly instead of silently re-routing."""

    def test_manifest_written_on_create(self, tmp_path):
        from repro.core.cache import CACHE_MANIFEST_NAME, read_cache_manifest

        ResultCache.on_disk(str(tmp_path / "flat"))
        ResultCache.on_disk(str(tmp_path / "sharded"), shards=4)
        flat = read_cache_manifest(str(tmp_path / "flat"))
        sharded = read_cache_manifest(str(tmp_path / "sharded"))
        assert flat == {"schema": CACHE_SCHEMA_VERSION, "shards": 1,
                        "layout": "flat"}
        assert sharded == {"schema": CACHE_SCHEMA_VERSION, "shards": 4,
                           "layout": "sharded"}
        assert os.path.exists(
            os.path.join(str(tmp_path / "flat"), CACHE_MANIFEST_NAME))

    def test_default_adopts_recorded_roster(self, tmp_path):
        key = job_key(JOB)
        ResultCache.on_disk(str(tmp_path), shards=3).backend.put(key, 0.5)
        adopted = ResultCache.on_disk(str(tmp_path))
        assert isinstance(adopted.backend, ShardedBackend)
        assert len(adopted.backend.backends) == 3
        assert adopted.backend.get(key) == 0.5

    def test_mismatched_roster_names_both_counts(self, tmp_path):
        ResultCache.on_disk(str(tmp_path), shards=2)
        with pytest.raises(EvaluationError) as excinfo:
            ResultCache.on_disk(str(tmp_path), shards=5)
        message = str(excinfo.value)
        assert "2" in message and "shards=5" in message

    def test_pre_manifest_directories_are_inferred(self, tmp_path):
        from repro.core.cache import CACHE_MANIFEST_NAME

        # A PR-6-era directory has entries but no manifest; the layout
        # is inferred from its shard-NN (or hex-fanout) directories.
        legacy = str(tmp_path / "legacy")
        key = job_key(JOB)
        ResultCache.on_disk(legacy, shards=3).backend.put(key, 0.5)
        os.unlink(os.path.join(legacy, CACHE_MANIFEST_NAME))
        with pytest.raises(EvaluationError):
            ResultCache.on_disk(legacy, shards=2)
        adopted = ResultCache.on_disk(legacy)
        assert len(adopted.backend.backends) == 3
        assert adopted.backend.get(key) == 0.5

        flat = str(tmp_path / "flat")
        ResultCache.on_disk(flat, shards=1).backend.put(key, 0.25)
        os.unlink(os.path.join(flat, CACHE_MANIFEST_NAME))
        with pytest.raises(EvaluationError):
            ResultCache.on_disk(flat, shards=4)
        assert isinstance(ResultCache.on_disk(flat).backend, DiskBackend)

    def test_corrupt_manifest_reads_as_absent(self, tmp_path):
        from repro.core.cache import CACHE_MANIFEST_NAME, read_cache_manifest

        root = str(tmp_path)
        ResultCache.on_disk(root, shards=2)
        with open(os.path.join(root, CACHE_MANIFEST_NAME), "w") as handle:
            handle.write("{torn")
        assert read_cache_manifest(root) is None
        # The shard-NN directories still tell the truth.
        with pytest.raises(EvaluationError):
            ResultCache.on_disk(root, shards=3)
        reopened = ResultCache.on_disk(root)
        assert len(reopened.backend.backends) == 2
