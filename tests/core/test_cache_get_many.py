"""Bulk cache probes: ``get_many`` across every backend.

The scheduler probes jobs in chunks, so one ``get_many`` must behave
exactly like N ``get`` calls — same presence semantics (absent keys
simply omitted, ``None`` values preserved), same hit/miss accounting
at the :class:`ResultCache` layer, and one listdir per bucket on disk
instead of one stat per key.
"""

import os
import tempfile

import pytest

from repro.core.cache import (
    MISSING,
    CacheBackend,
    DiskBackend,
    MemoryBackend,
    ResultCache,
    ShardedBackend,
    job_key,
)
from repro.core.jobs import MeasurementJob


def jobs(count, seed=0):
    return [
        MeasurementJob("sendrecv", "p4", "sun-ethernet", 2,
                       (("nbytes", 100 * index),), seed=seed)
        for index in range(count)
    ]


class TestBackends:
    @pytest.mark.parametrize("factory", [
        MemoryBackend,
        lambda: ShardedBackend([MemoryBackend() for _ in range(3)]),
    ])
    def test_get_many_matches_get(self, factory):
        backend = factory()
        stored = jobs(6)
        keys = [job_key(job) for job in stored]
        for index, key in enumerate(keys[:4]):
            backend.put(key, None if index == 0 else float(index), stored[index])

        found = backend.get_many(keys)
        assert set(found) == set(keys[:4])
        assert found[keys[0]] is None  # None is a value, not a miss
        for key in keys:
            single = backend.get(key)
            if key in found:
                assert single == found[key]
            else:
                assert single is MISSING

    def test_disk_get_many_spans_buckets_and_memo(self):
        stored = jobs(8)
        with tempfile.TemporaryDirectory() as root:
            backend = DiskBackend(root)
            keys = [job_key(job) for job in stored]
            for job, key in zip(stored[:5], keys[:5]):
                backend.put(key, 1.5, job)
            assert len({key[:2] for key in keys[:5]}) > 1  # really spans buckets

            # A fresh backend over the same directory: the resume path,
            # where nothing is memoized yet.
            fresh = DiskBackend(root)
            found = fresh.get_many(keys)
            assert found == {key: 1.5 for key in keys[:5]}
            # Second probe answers from the memo (delete the files to prove it).
            for key in keys[:5]:
                os.unlink(fresh._path(key))
            assert fresh.get_many(keys[:5]) == found

    def test_default_backend_implementation_loops(self):
        """The CacheBackend base gives subclasses get_many for free."""

        class Tiny(CacheBackend):
            def __init__(self):
                self.data = {}

            def get(self, key):
                return self.data.get(key, MISSING)

            def put(self, key, value, job=None):
                self.data[key] = value

        backend = Tiny()
        backend.put("a", 1.0)
        assert backend.get_many(["a", "b"]) == {"a": 1.0}


class TestResultCache:
    def test_counters_and_presence(self):
        cache = ResultCache()
        stored = jobs(5)
        for job in stored[:3]:
            cache.store(job, 2.0)
        results = cache.get_many(stored)
        assert set(results) == set(stored[:3])
        assert cache.hits == 3
        assert cache.misses == 2

    def test_duplicate_jobs_probe_once(self):
        cache = ResultCache()
        job = jobs(1)[0]
        cache.store(job, 1.0)
        assert cache.get_many([job, job, job]) == {job: 1.0}
        assert cache.hits == 1
        assert cache.misses == 0

    def test_backend_without_get_many_still_works(self):
        """Duck-typed backends predating get_many fall back to get."""

        class Legacy(object):
            def __init__(self):
                self.data = {}

            def get(self, key):
                return self.data.get(key, MISSING)

            def put(self, key, value, job=None):
                self.data[key] = value

        cache = ResultCache(Legacy())
        stored = jobs(3)
        cache.store(stored[0], None)
        results = cache.get_many(stored)
        assert results == {stored[0]: None}
        assert cache.hits == 1 and cache.misses == 2

    def test_get_many_agrees_with_lookup(self):
        with tempfile.TemporaryDirectory() as root:
            cache = ResultCache.on_disk(root)
            stored = jobs(4)
            cache.store(stored[1], 3.25)
            bulk = cache.get_many(stored)
            assert bulk == {stored[1]: 3.25}
            assert cache.lookup(stored[0]) is MISSING
            assert cache.lookup(stored[1]) == 3.25
