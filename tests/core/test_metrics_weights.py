"""Unit tests for metric normalization and weight profiles."""

import pytest

from repro.core import (
    ADL,
    APL,
    BALANCED,
    END_USER,
    Measurement,
    MeasurementSet,
    PRESET_PROFILES,
    TPL,
    WeightProfile,
    aggregate_scores,
    rank_by_value,
    ratio_scores,
)
from repro.errors import EvaluationError


class TestRatioScores:
    def test_best_tool_scores_one(self):
        scores = ratio_scores({"a": 2.0, "b": 4.0})
        assert scores["a"] == 1.0
        assert scores["b"] == 0.5

    def test_unavailable_scores_zero(self):
        scores = ratio_scores({"a": 2.0, "b": None})
        assert scores["b"] == 0.0

    def test_all_unavailable(self):
        assert ratio_scores({"a": None, "b": None}) == {"a": 0.0, "b": 0.0}

    def test_zero_time_scores_one(self):
        scores = ratio_scores({"a": 0.0, "b": 1.0})
        assert scores["a"] == 1.0

    def test_scores_bounded(self):
        scores = ratio_scores({"a": 1.0, "b": 3.0, "c": 100.0})
        assert all(0.0 <= s <= 1.0 for s in scores.values())


class TestRankByValue:
    def test_orders_ascending(self):
        assert rank_by_value({"slow": 3.0, "fast": 1.0, "mid": 2.0}) == ["fast", "mid", "slow"]

    def test_unavailable_last(self):
        assert rank_by_value({"a": 1.0, "b": None}) == ["a", "b"]

    def test_ties_break_by_name(self):
        assert rank_by_value({"b": 1.0, "a": 1.0}) == ["a", "b"]


class TestMeasurementSet:
    def test_duplicate_tool_rejected(self):
        with pytest.raises(EvaluationError):
            MeasurementSet("x", [Measurement("a", 1.0), Measurement("a", 2.0)])

    def test_negative_value_rejected(self):
        with pytest.raises(EvaluationError):
            Measurement("a", -1.0)

    def test_scores_and_ranking(self):
        ms = MeasurementSet("x", [Measurement("a", 1.0), Measurement("b", 2.0)])
        assert ms.scores() == {"a": 1.0, "b": 0.5}
        assert ms.ranking() == ["a", "b"]

    def test_available_flag(self):
        assert Measurement("a", 1.0).available
        assert not Measurement("a", None).available


class TestAggregateScores:
    def test_equal_weights_mean(self):
        combined = aggregate_scores([{"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}])
        assert combined == {"a": 0.5, "b": 0.5}

    def test_weighted(self):
        combined = aggregate_scores(
            [{"a": 1.0}, {"a": 0.0}], weights=[3.0, 1.0]
        )
        assert combined["a"] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate_scores([])

    def test_mismatched_tools_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate_scores([{"a": 1.0}, {"b": 1.0}])

    def test_zero_weights_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate_scores([{"a": 1.0}], weights=[0.0])

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate_scores([{"a": 1.0}], weights=[1.0, 2.0])


class TestWeightProfile:
    def test_normalization(self):
        profile = WeightProfile("x", {TPL: 2.0, APL: 2.0})
        assert profile.weight(TPL) == pytest.approx(0.5)
        assert profile.weight(ADL) == 0.0

    def test_overall_combination(self):
        profile = WeightProfile("x", {TPL: 1.0, APL: 3.0})
        overall = profile.overall({TPL: 1.0, APL: 0.0, ADL: 0.5})
        assert overall == pytest.approx(0.25)

    def test_missing_level_score_rejected(self):
        profile = WeightProfile("x", {TPL: 1.0, APL: 1.0})
        with pytest.raises(EvaluationError):
            profile.overall({TPL: 1.0})

    def test_negative_weight_rejected(self):
        with pytest.raises(EvaluationError):
            WeightProfile("x", {TPL: -1.0})

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            WeightProfile("x", {})

    def test_zero_sum_rejected(self):
        with pytest.raises(EvaluationError):
            WeightProfile("x", {TPL: 0.0, APL: 0.0})

    def test_presets_registered(self):
        assert set(PRESET_PROFILES) == {
            "balanced",
            "end-user",
            "application-developer",
            "tool-developer",
        }

    def test_end_user_emphasizes_apl(self):
        assert END_USER.weight(APL) > END_USER.weight(TPL)
        assert END_USER.weight(APL) > END_USER.weight(ADL)

    def test_balanced_is_uniform(self):
        assert BALANCED.weight(TPL) == pytest.approx(1 / 3)
        assert BALANCED.weight(APL) == pytest.approx(1 / 3)
        assert BALANCED.weight(ADL) == pytest.approx(1 / 3)
