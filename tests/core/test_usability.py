"""Unit tests for the ADL usability matrix (the paper's Section 3.3.1)."""

import pytest

from repro.core import (
    ADL_CRITERIA,
    NS,
    PS,
    Rating,
    USABILITY_MATRIX,
    WS,
    adl_score,
    usability_ratings,
)
from repro.core.report import render_usability_table
from repro.errors import EvaluationError


class TestRatings:
    def test_scores(self):
        assert WS.score == 1.0
        assert PS.score == 0.5
        assert NS.score == 0.0

    def test_from_code(self):
        assert Rating.from_code("ws") is WS
        assert Rating.from_code("PS") is PS

    def test_from_code_unknown(self):
        with pytest.raises(EvaluationError):
            Rating.from_code("XX")


class TestPaperMatrix:
    """The matrix must reproduce the paper's table cell by cell."""

    def test_nine_criteria(self):
        assert len(ADL_CRITERIA) == 9
        assert set(USABILITY_MATRIX) == {c.key for c in ADL_CRITERIA}

    @pytest.mark.parametrize(
        "criterion,expected",
        [
            ("programming-models", {"p4": WS, "pvm": WS, "express": WS}),
            ("language-interface", {"p4": WS, "pvm": WS, "express": WS}),
            ("ease-of-programming", {"p4": PS, "pvm": WS, "express": PS}),
            ("debugging-support", {"p4": PS, "pvm": PS, "express": WS}),
            ("customization", {"p4": PS, "pvm": NS, "express": PS}),
            ("error-handling", {"p4": PS, "pvm": PS, "express": PS}),
            ("run-time-interface", {"p4": PS, "pvm": WS, "express": WS}),
            ("integration", {"p4": PS, "pvm": WS, "express": NS}),
            ("portability", {"p4": WS, "pvm": WS, "express": WS}),
        ],
    )
    def test_cells_match_paper(self, criterion, expected):
        for tool, rating in expected.items():
            assert USABILITY_MATRIX[criterion][tool] == rating

    def test_error_handling_is_ps_for_all(self):
        """'All the tools ... do not have a mature error/exception
        handling feature' (Section 2.3)."""
        row = USABILITY_MATRIX["error-handling"]
        assert all(row[tool] == PS for tool in ("p4", "pvm", "express"))


class TestAdlScore:
    def test_scores_in_unit_interval(self):
        for tool in ("p4", "pvm", "express"):
            assert 0.0 <= adl_score(tool) <= 1.0

    def test_pvm_highest_adl(self):
        """PVM's column has the most WS cells (6 of 9)."""
        assert adl_score("pvm") > adl_score("express") > adl_score("p4")

    def test_exact_equal_weight_scores(self):
        # p4: 3 WS + 6 PS = (3 + 3) / 9
        assert adl_score("p4") == pytest.approx(6 / 9)
        # pvm: 6 WS + 2 PS + 1 NS = 7 / 9
        assert adl_score("pvm") == pytest.approx(7 / 9)
        # express: 5 WS + 3 PS + 1 NS = 6.5 / 9
        assert adl_score("express") == pytest.approx(6.5 / 9)

    def test_unassessed_tool_rejected(self):
        with pytest.raises(EvaluationError):
            usability_ratings("linda")


class TestRenderTable:
    def test_contains_all_rows_and_codes(self):
        table = render_usability_table()
        for criterion in ADL_CRITERIA:
            assert criterion.title in table
        assert "WS" in table and "PS" in table and "NS" in table

    def test_column_per_tool(self):
        table = render_usability_table()
        header = table.splitlines()[0]
        for tool in ("p4", "pvm", "express"):
            assert tool in header
