"""Integration tests for the evaluator and rankings (tiny workloads)."""

import pytest

from repro.core import (
    ADL,
    APL,
    END_USER,
    Evaluator,
    TPL,
    TOOL_DEVELOPER,
    evaluate_tools,
    primitive_rankings,
    summary_table,
)
from repro.errors import EvaluationError

_TINY_APPS = {
    "jpeg": {"height": 64, "width": 64},
    "fft2d": {"size": 32},
    "montecarlo": {"samples": 20_000},
    "psrs": {"keys": 5_000},
}


@pytest.fixture(scope="module")
def report():
    """One shared evaluation run (module-scoped: it is the slow part)."""
    return evaluate_tools(
        platform="sun-ethernet",
        processors=4,
        tpl_sizes=(1024, 16384),
        global_sum_ints=5_000,
        app_params=_TINY_APPS,
    )


class TestEvaluator:
    def test_unknown_tool_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator("sun-ethernet", tools=["p4", "linda"])

    def test_too_few_processors_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator("sun-ethernet", processors=1)

    def test_report_covers_all_tools(self, report):
        assert set(report.ranking()) == {"p4", "pvm", "express"}

    def test_scores_in_unit_interval(self, report):
        for row in report.scores().values():
            for score in row.values():
                assert 0.0 <= score <= 1.0

    def test_p4_wins_tpl(self, report):
        """The paper's headline: p4 best in all primitive classes."""
        scores = report.scores()
        assert scores["p4"]["tpl"] == pytest.approx(1.0)
        assert scores["pvm"]["tpl"] < 1.0
        assert scores["express"]["tpl"] < 1.0

    def test_pvm_wins_adl(self, report):
        scores = report.scores()
        assert scores["pvm"]["adl"] > scores["p4"]["adl"]

    def test_overall_is_weighted_combination(self, report):
        for evaluation in report.evaluations:
            expected = report.profile.overall(evaluation.level_scores)
            assert evaluation.overall == pytest.approx(expected)

    def test_ranking_sorted_by_overall(self, report):
        overalls = [evaluation.overall for evaluation in report.evaluations]
        assert overalls == sorted(overalls, reverse=True)

    def test_summary_mentions_everything(self, report):
        text = report.summary()
        for tool in ("p4", "pvm", "express"):
            assert tool in text
        assert "TPL" in text and "APL" in text and "ADL" in text
        assert report.best_tool() in text

    def test_detail_has_global_sum_na_for_pvm(self, report):
        pvm = next(e for e in report.evaluations if e.tool == "pvm")
        gsum_keys = [k for k in pvm.detail["tpl"] if k.startswith("global sum")]
        assert gsum_keys
        assert pvm.detail["tpl"][gsum_keys[0]] == 0.0


class TestWeightSensitivity:
    """Changing the profile re-weights the same measurements."""

    def test_profiles_change_overall(self, report):
        scores = {e.tool: e.level_scores for e in report.evaluations}
        balanced = {tool: report.profile.overall(s) for tool, s in scores.items()}
        tool_dev = {tool: TOOL_DEVELOPER.overall(s) for tool, s in scores.items()}
        # p4's margin grows when TPL dominates.
        assert tool_dev["p4"] - tool_dev["pvm"] > balanced["p4"] - balanced["pvm"]

    def test_end_user_weighting(self, report):
        scores = {e.tool: e.level_scores for e in report.evaluations}
        for tool, level_scores in scores.items():
            expected = (
                0.2 * level_scores[TPL] + 0.6 * level_scores[APL] + 0.2 * level_scores[ADL]
            )
            assert END_USER.overall(level_scores) == pytest.approx(expected)


class TestPrimitiveRankings:
    @pytest.fixture(scope="class")
    def rankings(self):
        return primitive_rankings("sun-ethernet", nbytes=16384, vector_ints=5_000)

    def test_all_classes_present(self, rankings):
        assert set(rankings) == {"snd/rcv", "broadcast", "ring", "global sum"}

    def test_p4_first_everywhere(self, rankings):
        """Table 4: 'p4 outperforms Express and PVM in all classes'."""
        for order in rankings.values():
            assert order[0] == "p4"

    def test_pvm_absent_from_global_sum(self, rankings):
        assert "pvm" not in rankings["global sum"]
        assert rankings["global sum"] == ["p4", "express"]

    def test_ring_order_matches_paper(self, rankings):
        """Table 4 Ethernet ring column: p4, Express, PVM."""
        assert rankings["ring"] == ["p4", "express", "pvm"]

    def test_summary_table_renders(self, rankings):
        text = summary_table({"SUN/Ethernet": rankings})
        assert "SUN/Ethernet" in text
        assert "snd/rcv" in text
        assert "p4" in text
