"""Multi-seed statistics: hand-computable fixtures and degeneracy.

``summarize`` is checked against numbers computed by hand; the
``ResultSet`` layer is then checked against ``summarize`` applied to
its own per-seed reports, with variance injected into a hand-built
value grid so the aggregate is non-trivial.  The degenerate cases the
reporting path must survive — one seed, zero variance — collapse to
exact ``0.0``, never ``NaN``.
"""

import math

import pytest

from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.core.stats import SampleStats, summarize, t_critical
from repro.errors import EvaluationError

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


class TestTCritical:
    def test_table_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(2) == pytest.approx(4.303)
        assert t_critical(4) == pytest.approx(2.776)
        assert t_critical(2, confidence=0.90) == pytest.approx(2.920)
        assert t_critical(2, confidence=0.99) == pytest.approx(9.925)

    def test_large_df_uses_normal_limit(self):
        assert t_critical(1000) == pytest.approx(1.960)
        assert t_critical(1000, confidence=0.90) == pytest.approx(1.645)

    def test_invalid_inputs(self):
        with pytest.raises(EvaluationError):
            t_critical(0)
        with pytest.raises(EvaluationError):
            t_critical(3, confidence=0.42)


class TestSummarize:
    def test_known_variance_fixture(self):
        """[1..5]: mean 3, s = sqrt(2.5), CI = t(4) * s / sqrt(5)."""
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.n == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.stddev == pytest.approx(math.sqrt(2.5))
        expected_halfwidth = 2.776 * math.sqrt(2.5) / math.sqrt(5)
        assert stats.ci_halfwidth == pytest.approx(expected_halfwidth)
        assert stats.ci_low == pytest.approx(3.0 - expected_halfwidth)
        assert stats.ci_high == pytest.approx(3.0 + expected_halfwidth)

    def test_three_samples_hand_computed(self):
        """[0.8, 0.9, 1.0]: mean 0.9, s = 0.1, CI = 4.303 * 0.1 / sqrt(3)."""
        stats = summarize([0.8, 0.9, 1.0])
        assert stats.mean == pytest.approx(0.9)
        assert stats.stddev == pytest.approx(0.1)
        assert stats.ci_halfwidth == pytest.approx(4.303 * 0.1 / math.sqrt(3))

    def test_single_sample_degenerates_without_nans(self):
        stats = summarize([0.7])
        assert stats == SampleStats(1, 0.7, 0.0, 0.0, 0.95)
        assert not math.isnan(stats.ci_halfwidth)

    def test_zero_variance_degenerates_without_nans(self):
        stats = summarize([0.5, 0.5, 0.5])
        assert stats.mean == pytest.approx(0.5)
        assert stats.stddev == 0.0
        assert stats.ci_halfwidth == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(EvaluationError):
            summarize([])

    def test_str_and_dict_forms(self):
        stats = summarize([0.8, 0.9, 1.0])
        assert str(stats) == "0.900 ±0.248"
        assert stats.to_dict() == {
            "n": 3,
            "mean": stats.mean,
            "stddev": stats.stddev,
            "ci_halfwidth": stats.ci_halfwidth,
            "confidence": 0.95,
        }


def seeded_result_set(seeds=(0, 1, 2), factors=(1.0, 1.1, 0.9)):
    """A 3-seed ResultSet with hand-injected per-seed variance.

    The simulator is deterministic across seeds, so variance is
    injected by scaling one measured pass per seed — that keeps every
    downstream number derivable from real scoring code while giving
    the statistics something to measure.
    """
    from dataclasses import replace

    from repro.core.results import ResultSet

    spec = EvaluationSpec(seeds=seeds, **_TINY)
    base = Scheduler().run(spec.with_(seeds=(seeds[0],)))
    scale = dict(zip(seeds, factors))
    values = {}
    for job in spec.jobs():
        sample = base.value(replace(job, seed=seeds[0]))
        values[job] = None if sample is None else sample * scale[job.seed]
    return spec, ResultSet(spec, values)


class TestResultSetStatistics:
    @pytest.fixture(scope="class")
    def varied(self):
        return seeded_result_set()

    def test_stats_match_per_seed_reports(self, varied):
        """seed_statistics is exactly summarize() over the per-seed
        overall scores — verified cell by cell."""
        spec, result = varied
        stats = result.seed_statistics()
        assert set(stats) == {
            ("sun-ethernet", "balanced", tool) for tool in spec.tools
        }
        for tool in spec.tools:
            overalls = [
                result.report("sun-ethernet", "balanced", seed).scores()[tool]["overall"]
                for seed in spec.seeds
            ]
            expected = summarize(overalls)
            cell = stats[("sun-ethernet", "balanced", tool)]
            assert cell.n == 3
            assert cell.mean == pytest.approx(expected.mean)
            assert cell.stddev == pytest.approx(expected.stddev)
            assert cell.ci_halfwidth == pytest.approx(expected.ci_halfwidth)

    def test_injected_variance_is_visible(self, varied):
        _, result = varied
        assert any(
            cell.stddev > 0.0 for cell in result.seed_statistics().values()
        )

    def test_stats_table_renders_mean_ci(self, varied):
        _, result = varied
        table = result.comparison(stats=True)
        assert "mean ±95% CI over 3 seeds" in table
        assert "sun-ethernet/balanced" in table
        assert "±" in table

    def test_export_carries_statistics(self, varied):
        _, result = varied
        statistics = result.to_dict()["statistics"]
        cell = statistics["sun-ethernet/balanced"]
        assert set(cell) == set(result.spec.tools)
        assert all(entry["n"] == 3 for entry in cell.values())

    def test_single_seed_collapses_cleanly(self):
        """The degenerate case: one seed, CI exactly zero, no NaNs."""
        spec = EvaluationSpec(**_TINY)
        result = Scheduler().run(spec)
        for cell in result.seed_statistics().values():
            assert cell.n == 1
            assert cell.stddev == 0.0
            assert cell.ci_halfwidth == 0.0
            assert not math.isnan(cell.mean)
        assert "over 1 seed" in result.comparison(stats=True)

    def test_real_multi_seed_run_has_no_nans(self):
        """Three real seeds through the scheduler (variance may be
        zero — the simulator is deterministic): stats stay finite."""
        spec = EvaluationSpec(seeds=(0, 1, 2), **_TINY)
        result = Scheduler().run(spec)
        for cell in result.seed_statistics().values():
            assert cell.n == 3
            assert math.isfinite(cell.mean)
            assert math.isfinite(cell.stddev)
            assert math.isfinite(cell.ci_halfwidth)
