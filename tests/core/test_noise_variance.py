"""End-to-end: the noise knob makes multi-seed statistics *real*.

Before the seeded stochastic models were wired through
``build_platform``, every seed simulated identical timings and every
Student-t CI collapsed to ±0 — the statistics machinery only ever saw
injected fixture noise.  These tests pin the honest behavior: noise
off means exactly reproducible ±0 (the golden-report guarantee), and
noise on means nonzero simulated variance that is still bit-exactly
reproducible per (platform, processors, seed, noise) triple — and
cached separately from deterministic runs.
"""

import pytest

from repro.core.cache import job_key
from repro.core.scheduler import ResultCache, Scheduler
from repro.core.spec import EvaluationSpec

_TINY = dict(
    tools=("p4", "express"),
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
    seeds=(0, 1, 2),
)


@pytest.fixture(scope="module")
def noisy_run():
    spec = EvaluationSpec(noise=1.0, **_TINY)
    return spec, Scheduler().run(spec)


class TestSimulatedVariance:
    def test_deterministic_seeds_collapse_to_zero_stddev(self):
        """Noise off: replication is exact, CIs are honestly ±0."""
        result = Scheduler().run(EvaluationSpec(**_TINY))
        for stats in result.seed_statistics().values():
            assert stats.stddev == 0.0
            assert stats.ci_halfwidth == 0.0

    def test_noise_yields_nonzero_stddev_on_ethernet(self, noisy_run):
        """The acceptance bar: --noise with >=3 seeds reports real
        spread on an ethernet platform (relative scores, so the
        trailing tool shows the variance; the per-set winner pins 1.0
        by construction)."""
        spec, result = noisy_run
        stats = result.seed_statistics()
        assert any(cell.stddev > 0.0 for cell in stats.values())
        express = stats[("sun-ethernet", "balanced", "express")]
        assert express.stddev > 0.0
        assert express.ci_halfwidth > 0.0
        assert 0.0 < express.mean < 1.0

    def test_raw_samples_vary_across_seeds(self, noisy_run):
        spec, result = noisy_run
        ring = [job for job in spec.jobs()
                if job.kind == "ring" and job.tool == "p4"]
        samples = [result.value(job) for job in ring]
        assert len(set(samples)) == len(samples)


class TestReproducibility:
    def test_same_noise_triple_is_bit_identical(self, noisy_run):
        """(platform, processors, seed, noise) fully reproduces the
        run: a fresh scheduler simulating from scratch produces the
        exact same samples, bit for bit."""
        spec, result = noisy_run
        rerun = Scheduler().run(spec)
        assert rerun.values == result.values

    def test_noise_scale_changes_the_samples(self, noisy_run):
        spec, result = noisy_run
        scaled = Scheduler().run(spec.with_(noise=2.0))
        assert scaled.values != result.values


class TestCacheIsolation:
    def test_noisy_and_deterministic_runs_share_no_entries(self):
        """One shared cache, a deterministic pass then a noisy pass:
        the noisy pass must be all misses (and vice versa)."""
        det_spec = EvaluationSpec(**_TINY)
        noisy_spec = det_spec.with_(noise=1.0)
        det_keys = {job_key(job) for job in det_spec.jobs()}
        noisy_keys = {job_key(job) for job in noisy_spec.jobs()}
        assert det_keys.isdisjoint(noisy_keys)

        cache = ResultCache()
        first = Scheduler(cache=cache)
        first.run(det_spec)
        second = Scheduler(cache=cache)
        second.run(noisy_spec)
        assert second.simulations_run == noisy_spec.job_count()
        assert cache.hits == 0
        # Re-running either spec now serves purely from cache.
        third = Scheduler(cache=cache)
        third.run(noisy_spec)
        assert third.simulations_run == 0
