"""The schema pack against its known-good/known-bad fixtures."""

import os

from repro.analysis import run_checks, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "schema")


def check(rule_id, name):
    return run_checks(
        [os.path.join(FIXTURES, name)], select_rules([rule_id])
    ).findings


class TestEventRegistry:
    def test_flags_unenrolled_event_and_ghost_entry(self):
        findings = check("schema.event-registry", "bad_event_registry.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("Forgotten" in m and "not enrolled" in m for m in messages)
        assert any("'JobVanished'" in m for m in messages)

    def test_complete_registry_passes(self):
        assert check("schema.event-registry", "good_event_registry.py") == []


class TestDictRoundTrip:
    def test_flags_each_side_that_forgot_a_field(self):
        findings = check("schema.dict-round-trip", "bad_round_trip.py")
        messages = sorted(finding.message for finding in findings)
        assert messages == [
            "Record.retries is never handled by to_dict()",
            "Record.timeout is never handled by from_dict()",
        ]

    def test_full_round_trip_with_external_field_passes(self):
        assert check("schema.dict-round-trip", "good_round_trip.py") == []


class TestCacheKeyFields:
    def test_flags_missing_field_and_ghost_key(self):
        findings = check("schema.cache-key-fields", "bad_cache_key.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("MeasurementJob.seed never reaches to_dict" in m
                   for m in messages)
        assert any("'flavor'" in m for m in messages)

    def test_exact_payload_with_conditional_elision_passes(self):
        assert check("schema.cache-key-fields", "good_cache_key.py") == []
