"""The determinism pack against its known-good/known-bad fixtures."""

import os

from repro.analysis import run_checks, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "determinism")
SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")
)


def check(rule_id, *parts):
    return run_checks(
        [os.path.join(FIXTURES, *parts)], select_rules([rule_id])
    ).findings


class TestWallClock:
    def test_flags_every_host_clock_read_in_scope(self):
        findings = check("determinism.wall-clock", "sim", "bad_wall_clock.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 3
        assert any("time.time()" in message for message in messages)
        assert any("datetime.datetime.now()" in message for message in messages)
        # from time import monotonic as clock — alias resolved.
        assert any("time.monotonic()" in message for message in messages)

    def test_out_of_scope_files_are_exempt(self):
        assert check("determinism.wall-clock", "outside", "host_side.py") == []


class TestEntropy:
    def test_flags_random_numpy_uuid_urandom(self):
        findings = check("determinism.entropy", "sim", "bad_entropy.py")
        names = {finding.message.split("(")[0] for finding in findings}
        assert names == {
            "random.random", "numpy.random.default_rng",
            "uuid.uuid4", "os.urandom",
        }

    def test_out_of_scope_files_are_exempt(self):
        assert check("determinism.entropy", "outside", "host_side.py") == []

    def test_rng_module_suppressions_are_exact(self):
        # The sanctioned construction sites in sim/rng.py are allowed;
        # nothing else there fires and no suppression is stale.
        report = run_checks(
            [os.path.join(SRC, "sim", "rng.py")],
            select_rules(["determinism"]),
        )
        assert report.findings == []


class TestStreamName:
    def test_flags_unregistered_and_dynamic_names(self):
        findings = check("determinism.stream-name", "sim", "bad_stream_name.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 4
        assert any("'unregistered.noise'" in message for message in messages)
        assert any("'rogue.rank<dynamic>'" in message for message in messages)
        # Both the bare-name argument and the f-string whose *head* is
        # an interpolation are non-static.
        assert sum("not a static string" in m for m in messages) == 2

    def test_registered_names_and_rank_families_pass(self):
        assert check("determinism.stream-name", "sim", "good_streams.py") == []

    def test_every_name_used_in_src_is_registered(self):
        report = run_checks(
            [SRC], select_rules(["determinism.stream-name"]),
        )
        assert report.findings == []


class TestKeyOrdering:
    def test_flags_unsorted_dumps_and_items_in_key_builders(self):
        findings = check("determinism.key-ordering", "bad_key_ordering.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("sort_keys" in message for message in messages)
        assert any(".items()" in message for message in messages)

    def test_sorted_builders_and_non_key_functions_pass(self):
        assert check("determinism.key-ordering", "good_key_ordering.py") == []

    def test_applies_outside_scoped_dirs(self):
        # Unlike the other determinism rules, key-ordering follows the
        # function name, not the path: the bad fixture lives outside
        # sim/ and still fires (asserted above); double-check scope.
        findings = check("determinism.key-ordering", "bad_key_ordering.py")
        assert all("sim" not in finding.path.split(os.sep) for finding in findings)
