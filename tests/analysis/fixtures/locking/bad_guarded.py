"""Known-bad: guarded fields touched outside their lock."""

import threading


class Counter(object):
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self._pending = []  # guarded-by: _lock

    def bump(self):
        self.count += 1  # unlocked write

    def snapshot(self):
        with self._lock:
            count = self.count
        return count, list(self._pending)  # second read escaped the lock
