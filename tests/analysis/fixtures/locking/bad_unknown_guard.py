"""Known-bad: the annotation names a lock the class never creates
(e.g. the lock was renamed but the annotation was not)."""

import threading


class Renamed(object):
    def __init__(self):
        self._state_lock = threading.Lock()
        self.state = {}  # guarded-by: _lock
