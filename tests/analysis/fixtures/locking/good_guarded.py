"""Known-good: every guarded access is under the lock or in a
*_locked helper (called with the lock held)."""

import threading


class Counter(object):
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self._pending = []  # guarded-by: _lock
        self.label = "counter"  # unguarded on purpose: immutable after init

    def bump(self):
        with self._lock:
            self.count += 1
            self._drain_locked()

    def _drain_locked(self):
        while self._pending:
            self._pending.pop()

    def describe(self):
        return self.label

    def snapshot(self):
        with self._lock:
            return self.count, list(self._pending)
