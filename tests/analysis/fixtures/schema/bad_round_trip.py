"""Known-bad: a field each side of the round-trip forgot."""

from dataclasses import dataclass


@dataclass
class Record(object):
    name: str
    retries: int
    timeout: float

    def to_dict(self):
        return {"name": self.name, "timeout": self.timeout}  # retries lost

    @classmethod
    def from_dict(cls, data):
        # timeout is never read back (hardcoded positionally).
        return cls(data["name"], data.get("retries", 0), 1.0)
