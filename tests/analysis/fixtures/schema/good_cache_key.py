"""Known-good: payload keys == fields, with conditional elision."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MeasurementJob(object):
    kind: str
    tool: str
    seed: int
    noise: float

    def to_dict(self):
        data = {"kind": self.kind, "tool": self.tool, "seed": self.seed}
        if self.noise:
            data["noise"] = self.noise  # elided when falsy; key still appears
        return data
