"""Known-good: every event class is enrolled, nothing else is."""


class RunEvent(object):
    type = "event"


class JobStarted(RunEvent):
    type = "job-started"


class JobFinished(RunEvent):
    type = "job-finished"


EVENT_TYPES = {cls.type: cls for cls in (JobStarted, JobFinished)}
