"""Known-good: full round-trip, one field documented as external."""

from dataclasses import dataclass


@dataclass
class Record(object):
    key: str  # schema: external - carried as the mapping key
    name: str
    retries: int

    def to_dict(self):
        return {"name": self.name, "retries": self.retries}

    @classmethod
    def from_dict(cls, key, data):
        return cls(key=key, name=data["name"], retries=data["retries"])
