"""Known-bad: one event class unenrolled, one ghost enrolled."""


class RunEvent(object):
    type = "event"


class JobStarted(RunEvent):
    type = "job-started"


class JobFinished(RunEvent):
    type = "job-finished"


class Forgotten(RunEvent):
    type = "forgotten"


JobVanished = dict  # not an event class

EVENT_TYPES = {cls.type: cls for cls in (JobStarted, JobFinished, JobVanished)}
