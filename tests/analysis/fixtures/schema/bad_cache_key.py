"""Known-bad: the cache-key payload drifted from the field set."""

from dataclasses import dataclass


@dataclass(frozen=True)
class MeasurementJob(object):
    kind: str
    tool: str
    seed: int

    def to_dict(self):
        data = {"kind": self.kind, "tool": self.tool}  # seed missing
        data["flavor"] = "vanilla"  # ghost key: not a field
        return data
