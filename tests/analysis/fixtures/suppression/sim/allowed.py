"""Fixture: a deliberate violation under an allow comment, plus a
stale allow comment that matches nothing."""

import time


def instrumented():
    # Sanctioned: pretend this is genuinely host-side instrumentation.
    started = time.time()  # repro: allow[determinism.wall-clock]
    return started


def clean():
    return 42  # repro: allow[determinism.entropy]
