"""Known-bad: dict-order-dependent iteration in key builders.

Lives *outside* the scoped dirs on purpose: key-ordering applies
anywhere in the tree.
"""

import json


def build_cache_key(payload):
    return json.dumps(payload)


def hash_params(params, digest):
    for name, value in params.items():
        digest.update(("%s=%r" % (name, value)).encode())
    return digest.hexdigest()
