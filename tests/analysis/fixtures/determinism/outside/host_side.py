"""Known-good: wall-clock and entropy are fine *outside* the scoped
trees (this is host-side instrumentation territory)."""

import random
import time


def measure(callback):
    started = time.time()
    shuffle_seed = random.random()
    callback()
    return time.time() - started, shuffle_seed
