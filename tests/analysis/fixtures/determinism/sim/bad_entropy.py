"""Known-bad: ambient entropy inside a scoped (sim/) tree."""

import os
import random
import uuid

import numpy as np


def draw_everything():
    jitter = random.random()
    noise = np.random.default_rng(42)
    token = uuid.uuid4()
    raw = os.urandom(8)
    return jitter, noise, token, raw
