"""Known-good: registered stream names, simulated time only."""


def attach(streams, env, rank):
    backoff = streams.stream("ethernet.backoff")
    samples = streams.numpy_stream("mc.rank%d" % rank)
    keys = streams.fresh_numpy_stream(f"psrs.keys.rank{rank}")
    now = env.now
    return backoff, samples, keys, now
