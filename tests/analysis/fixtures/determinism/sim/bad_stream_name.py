"""Known-bad: stream names outside the STREAM_NAMES registry."""


def attach(streams, rank, name):
    rogue = streams.stream("unregistered.noise")
    rogue_family = streams.numpy_stream("rogue.rank%d" % rank)
    opaque = streams.fresh_numpy_stream(name)
    opaque_fstring = streams.stream(f"{name}.suffix")
    return rogue, rogue_family, opaque, opaque_fstring
