"""Known-bad: host wall-clock reads inside a scoped (sim/) tree."""

import datetime
import time
from time import monotonic as clock


def stamp_events(events):
    started = time.time()
    today = datetime.datetime.now()
    tick = clock()
    return started, today, tick
