"""Known-good: order-independent key builders."""

import json


def build_cache_key(payload):
    return json.dumps(payload, sort_keys=True)


def hash_params(params, digest):
    for name, value in sorted(params.items()):
        digest.update(("%s=%r" % (name, value)).encode())
    return digest.hexdigest()


def render_rows(table):
    # Not a key/hash builder: unsorted iteration here is fine.
    return [str(row) for row in table.items()]
