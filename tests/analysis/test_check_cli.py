"""`repro check` end to end, including the HEAD-is-clean meta-test."""

import json
import os

from repro.analysis import all_rules
from repro.cli import main

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))


class TestCheckCommand:
    def test_src_tree_is_clean_on_head(self, capsys):
        # The repo's own invariants hold: this is the same invocation
        # CI's static-smoke job hard-fails on.
        assert main(["check", SRC]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_1_with_file_line_and_hint(self, capsys):
        path = os.path.join(FIXTURES, "locking", "bad_guarded.py")
        assert main(["check", path]) == 1
        out = capsys.readouterr().out
        assert "bad_guarded.py:13: [locking.guarded-field]" in out
        assert "hint:" in out

    def test_rule_filter_bisects(self, capsys):
        sim = os.path.join(FIXTURES, "determinism", "sim")
        assert main(["check", "--rule", "determinism.entropy", sim]) == 1
        out = capsys.readouterr().out
        assert "determinism.entropy" in out
        assert "determinism.wall-clock" not in out
        assert "determinism.stream-name" not in out

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["check", "--rule", "nope", SRC]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_missing_path_exits_2(self, capsys):
        assert main(["check", os.path.join(FIXTURES, "absent")]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_json_format_round_trips(self, capsys):
        path = os.path.join(FIXTURES, "schema", "bad_cache_key.py")
        assert main(["check", "--format", "json", path]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert {f["rule"] for f in payload["findings"]} == {
            "schema.cache-key-fields"
        }

    def test_list_documents_every_rule_and_dynamic_counterparts(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
        assert "tests/analysis_checks/" in out
        assert "apl_check" in out and "ordering_check" in out

    def test_help_epilog_documents_every_rule_id(self, capsys):
        try:
            main(["check", "--help"])
        except SystemExit as stop:
            assert stop.code == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
        assert "repro: allow[" in out
