"""Engine behavior: suppressions, selection, walking, JSON output."""

import json
import os

import pytest

from repro.analysis import (
    all_rules,
    findings_to_json,
    iter_python_files,
    run_checks,
    select_rules,
)
from repro.analysis.engine import SYNTAX_ERROR, UNUSED_SUPPRESSION
from repro.errors import EvaluationError

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


class TestRuleSelection:
    def test_all_rules_have_unique_pack_qualified_ids(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        assert all("." in rule_id for rule_id in ids)
        packs = {rule_id.split(".")[0] for rule_id in ids}
        assert packs == {"determinism", "locking", "schema"}

    def test_pack_prefix_selects_the_whole_pack(self):
        selected = select_rules(["determinism"])
        assert [rule.id for rule in selected] == [
            rule.id for rule in all_rules()
            if rule.id.startswith("determinism.")
        ]

    def test_exact_id_selects_one_rule(self):
        selected = select_rules(["locking.guarded-field"])
        assert [rule.id for rule in selected] == ["locking.guarded-field"]

    def test_duplicate_selectors_do_not_duplicate_rules(self):
        selected = select_rules(["determinism", "determinism.entropy"])
        ids = [rule.id for rule in selected]
        assert len(ids) == len(set(ids))

    def test_unknown_selector_raises_naming_available_rules(self):
        with pytest.raises(EvaluationError, match="determinism.wall-clock"):
            select_rules(["determinizm"])


class TestFileWalking:
    def test_missing_path_raises_instead_of_reporting_clean(self):
        with pytest.raises(EvaluationError, match="no-such-dir"):
            list(iter_python_files([fixture("no-such-dir")]))

    def test_walk_is_sorted_and_deduplicated(self):
        twice = list(iter_python_files([FIXTURES, FIXTURES]))
        once = list(iter_python_files([FIXTURES]))
        assert twice == once == sorted(once)
        assert len(once) >= 10

    def test_single_file_path_is_accepted(self):
        path = fixture("locking", "good_guarded.py")
        assert list(iter_python_files([path])) == [path]

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "torn.py"
        bad.write_text("def broken(:\n")
        report = run_checks([str(bad)])
        assert [finding.rule for finding in report.findings] == [SYNTAX_ERROR]
        assert not report.clean


class TestSuppressions:
    def test_allow_comment_suppresses_exactly_its_line_and_rule(self):
        report = run_checks(
            [fixture("suppression", "sim", "allowed.py")],
            select_rules(["determinism.wall-clock"]),
        )
        # The time.time() call is allowed; nothing else fires.
        assert report.findings == []

    def test_stale_allow_comment_is_reported(self):
        report = run_checks([fixture("suppression", "sim", "allowed.py")])
        assert [finding.rule for finding in report.findings] == [
            UNUSED_SUPPRESSION
        ]
        finding = report.findings[0]
        assert "determinism.entropy" in finding.message
        assert finding.path.endswith("allowed.py")

    def test_rule_filter_does_not_misreport_other_packs_suppressions(self):
        # Bisecting with --rule locking must not flag the (used)
        # wall-clock suppression or the (stale) entropy one.
        report = run_checks(
            [fixture("suppression", "sim", "allowed.py")],
            select_rules(["locking"]),
        )
        assert report.findings == []

    def test_string_literal_mentioning_allow_is_not_a_suppression(self, tmp_path):
        snippet = tmp_path / "docs.py"
        snippet.write_text(
            'HELP = "suppress with # repro: allow[determinism.entropy]"\n'
        )
        report = run_checks([str(snippet)])
        assert report.findings == []


class TestJsonOutput:
    def test_schema_of_a_red_report(self):
        report = run_checks(
            [fixture("locking", "bad_guarded.py")],
            select_rules(["locking"]),
        )
        payload = json.loads(findings_to_json(report))
        assert payload["version"] == 1
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["rules_run"] == [
            "locking.guarded-field", "locking.unknown-guard",
        ]
        assert payload["findings"]
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "message", "hint"}
            assert isinstance(finding["line"], int) and finding["line"] > 0

    def test_schema_of_a_clean_report(self):
        report = run_checks([fixture("locking", "good_guarded.py")])
        payload = json.loads(findings_to_json(report))
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_findings_sorted_by_path_line_rule(self):
        report = run_checks([FIXTURES])
        keys = [(f.path, f.line, f.rule) for f in report.findings]
        assert keys == sorted(keys)
