"""The locking pack against its known-good/known-bad fixtures."""

import os
import textwrap

from repro.analysis import run_checks, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "locking")


def check(rule_id, name):
    return run_checks(
        [os.path.join(FIXTURES, name)], select_rules([rule_id])
    ).findings


def check_snippet(tmp_path, source, rule_id="locking.guarded-field"):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    return run_checks([str(path)], select_rules([rule_id])).findings


class TestGuardedField:
    def test_flags_unlocked_write_and_escaped_read(self):
        findings = check("locking.guarded-field", "bad_guarded.py")
        messages = [finding.message for finding in findings]
        assert len(findings) == 2
        assert any("Counter.bump touches self.count" in m for m in messages)
        assert any(
            "Counter.snapshot touches self._pending" in m for m in messages
        )

    def test_locked_accesses_and_locked_helpers_pass(self):
        assert check("locking.guarded-field", "good_guarded.py") == []

    def test_unannotated_fields_are_not_policed(self, tmp_path):
        findings = check_snippet(tmp_path, """\
            class Free(object):
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """)
        assert findings == []

    def test_construction_methods_are_exempt(self, tmp_path):
        findings = check_snippet(tmp_path, """\
            import threading

            class Built(object):
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = {}  # guarded-by: _lock
                    self.state["warm"] = True
            """)
        assert findings == []

    def test_nested_with_blocks_propagate_the_held_lock(self, tmp_path):
        findings = check_snippet(tmp_path, """\
            import threading

            class Nested(object):
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []  # guarded-by: _lock

                def drain(self, out):
                    with self._lock:
                        with open("log") as handle:
                            for item in self.items:
                                handle.write(str(item))
            """)
        assert findings == []

    def test_guarded_by_inside_a_string_is_not_an_annotation(self, tmp_path):
        findings = check_snippet(tmp_path, """\
            class Doc(object):
                def __init__(self):
                    self.note = "fields use '# guarded-by: _lock' comments"

                def read(self):
                    return self.note
            """)
        assert findings == []


class TestUnknownGuard:
    def test_flags_guard_the_class_never_creates(self):
        findings = check("locking.unknown-guard", "bad_unknown_guard.py")
        assert len(findings) == 1
        assert "'_lock'" in findings[0].message
        assert "Renamed.state" in findings[0].message

    def test_existing_guard_passes(self):
        assert check("locking.unknown-guard", "good_guarded.py") == []
