"""Leaderboards and analytics: ordering, windows, failure patterns."""

import json

import pytest

from repro.errors import HistoryError
from repro.history import analyze_history, leaderboards, trend

from history_helpers import scaled


def synthetic_export(scores, spec_extra=None):
    """A minimal evaluation export whose statistics are dictated.

    ``scores``: {(platform, profile, tool): (mean, stddev, n)}.
    """
    statistics = {}
    for (platform, profile, tool), (mean, stddev, n) in sorted(scores.items()):
        cell = statistics.setdefault("%s/%s" % (platform, profile), {})
        cell[tool] = {"n": n, "mean": mean, "stddev": stddev,
                      "ci_halfwidth": 0.0, "confidence": 0.95}
    spec = {"tools": sorted({key[2] for key in scores}), "noise": 0.0}
    spec.update(spec_extra or {})
    return {"spec": spec, "samples": [], "statistics": statistics}


def record_scores(store, *score_maps):
    for scores in score_maps:
        store.record_result(synthetic_export(scores))


class TestLeaderboards:
    def test_ranks_by_mean_score_descending(self, store):
        record_scores(store, {
            ("net", "balanced", "p4"): (0.9, 0.0, 3),
            ("net", "balanced", "pvm"): (0.6, 0.0, 3),
            ("net", "balanced", "mpi"): (0.8, 0.0, 3),
        })
        (board,) = leaderboards(store)
        assert [(row.rank, row.tool) for row in board.rows] == [
            (1, "p4"), (2, "mpi"), (3, "pvm")]
        assert board.winner == "p4"

    def test_ties_break_on_tool_name(self, store):
        record_scores(store, {
            ("net", "balanced", "zz"): (0.5, 0.0, 1),
            ("net", "balanced", "aa"): (0.5, 0.0, 1),
        })
        (board,) = leaderboards(store)
        assert [row.tool for row in board.rows] == ["aa", "zz"]

    def test_aggregates_across_the_window(self, store):
        record_scores(
            store,
            {("net", "balanced", "p4"): (0.6, 0.0, 1)},
            {("net", "balanced", "p4"): (0.8, 0.0, 1)},
        )
        (board,) = leaderboards(store)
        (row,) = board.rows
        assert row.runs == 2
        assert row.stats.mean == pytest.approx(0.7)
        assert row.latest == pytest.approx(0.8)  # newest run's score

    def test_window_excludes_older_runs(self, store):
        record_scores(
            store,
            {("net", "balanced", "p4"): (0.1, 0.0, 1)},
            {("net", "balanced", "p4"): (0.9, 0.0, 1)},
        )
        (board,) = leaderboards(store, window=1)
        assert board.rows[0].stats.mean == pytest.approx(0.9)
        assert len(board.run_ids) == 1

    def test_platform_profile_filters_and_board_order(self, store):
        record_scores(store, {
            ("zeta", "balanced", "p4"): (0.9, 0.0, 1),
            ("alpha", "end-user", "p4"): (0.8, 0.0, 1),
            ("alpha", "balanced", "p4"): (0.7, 0.0, 1),
        })
        boards = leaderboards(store)
        assert [(b.platform, b.profile) for b in boards] == [
            ("alpha", "balanced"), ("alpha", "end-user"), ("zeta", "balanced")]
        filtered = leaderboards(store, platform="alpha", profile="end-user")
        assert [(b.platform, b.profile) for b in filtered] == [
            ("alpha", "end-user")]

    def test_rendering_is_deterministic(self, store):
        record_scores(store, {
            ("net", "balanced", "p4"): (0.9, 0.0, 3),
            ("net", "balanced", "pvm"): (0.6, 0.0, 3),
        })
        assert leaderboards(store)[0].render() == leaderboards(store)[0].render()

    def test_window_must_be_positive(self, store):
        with pytest.raises(HistoryError, match=">= 1"):
            leaderboards(store, window=0)

    def test_empty_store_yields_no_boards(self, store):
        assert leaderboards(store) == []


class TestTrend:
    def test_needs_exactly_one_query_shape(self, store):
        with pytest.raises(HistoryError, match="different queries"):
            trend(store, metric="metrics.x", platform="net")
        with pytest.raises(HistoryError, match="needs platform"):
            trend(store, platform="net")

    def test_sample_trend_direction(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 2.0))
        series = trend(store, platform="sun-ethernet", tool="p4",
                       kind="sendrecv", size=1024)
        assert series.unit == "seconds"
        assert series.direction() == "regressing"
        assert len(series.points) == 2

    def test_metric_trend_direction_is_polarity_neutral(self, store):
        for value in (1.0, 2.0):
            store.record_bench({"benchmark": "kernel",
                                "metrics": {"kernel_events_per_sec": value}})
        series = trend(store, metric="metrics.kernel_events_per_sec")
        assert series.unit == "value"
        assert series.direction() == "up"
        assert series.values == [1.0, 2.0]


class TestAnalyzeHistory:
    def test_repeat_regressions_cluster(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 1.5, kinds=("sendrecv",)))
        store.record_result(scaled(export, 2.25, kinds=("sendrecv",)))
        analysis = analyze_history(store)
        (offender,) = analysis.repeat_regressions
        assert offender["count"] == 2
        assert "sendrecv" in offender["cell"]
        assert any("bisect" in line for line in analysis.recommendations)

    def test_one_off_regression_is_not_a_repeat_offender(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 1.5, kinds=("sendrecv",)))
        store.record_result(scaled(export, 1.5, kinds=("sendrecv",)))
        assert analyze_history(store).repeat_regressions == []

    def test_unmeasured_cells_surface_per_tool(self, store, export):
        for sample in export["samples"]:
            if sample["kind"] == "global_sum":
                sample["seconds"] = None
        store.record_result(export)
        analysis = analyze_history(store)
        assert analysis.unmeasured == [
            {"tool": "p4", "kind": "global_sum", "cells": 1}]
        assert any("p4" in line and "global_sum" in line
                   for line in analysis.recommendations)

    def test_overlapping_cis_recommend_more_seeds(self, store):
        record_scores(
            store,
            {("net", "balanced", "p4"): (0.80, 0.05, 3),
             ("net", "balanced", "mpi"): (0.78, 0.05, 3)},
            {("net", "balanced", "p4"): (0.70, 0.05, 3),
             ("net", "balanced", "mpi"): (0.72, 0.05, 3)},
        )
        analysis = analyze_history(store)
        assert any("CIs overlap" in line for line in analysis.recommendations)

    def test_to_dict_round_trips_through_json(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 2.0))
        payload = analyze_history(store).to_dict()
        assert payload == json.loads(json.dumps(payload))
