"""Helpers shared by the history tests (imported by name, like
tests/service's service_helpers, so no two directories fight over a
``conftest`` module import)."""

import copy

from repro.core.spec import EvaluationSpec

TINY = dict(
    tools=("p4",),
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def tiny_spec(**overrides):
    """A seconds-scale spec: one tool -> 5 jobs per seed."""
    kwargs = dict(TINY)
    kwargs.update(overrides)
    return EvaluationSpec(**kwargs)


def scaled(export_dict, factor, kinds=None):
    """A copy of an export with (some kinds of) samples slowed/sped
    by ``factor`` — the injected-regression helper."""
    doctored = copy.deepcopy(export_dict)
    for sample in doctored["samples"]:
        if sample.get("seconds") is None:
            continue
        if kinds is not None and sample["kind"] not in kinds:
            continue
        sample["seconds"] *= factor
    return doctored
