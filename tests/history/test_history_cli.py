"""The `repro history` surface end to end, through repro.cli.main.

The full journey a CI pipeline takes: evaluate twice into one
database, list/show/diff/leaderboard over it, then gate — passing on
the honest pair and failing (exit 1) on an injected slowdown.
"""

import json

import pytest

from repro.cli import main
from repro.history import HistoryStore

from history_helpers import TINY, scaled


def run_evaluate(db, capsys, label=None):
    argv = ["evaluate", "--tools", "p4", "--seeds", "0", "1",
            "--noise", "1.0", "--history-db", db]
    if label:
        argv += ["--history-label", label]
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.fixture
def seeded_db(tmp_path, export):
    """Two honest runs recorded via the API (fast), CLI-compatible."""
    db = str(tmp_path / "h.db")
    with HistoryStore(db) as store:
        store.record_result(export, label="first", source="cli")
        store.record_result(export, label="second", source="cli")
    return db


class TestEvaluateRecording:
    def test_evaluate_history_db_records_a_run(self, tmp_path, capsys):
        db = str(tmp_path / "cli.db")
        out = run_evaluate(db, capsys, label="smoke")
        assert "recorded run " in out
        with HistoryStore(db) as store:
            (run,) = store.list_runs()
            assert run["label"] == "smoke"
            assert run["source"] == "cli"
            assert run["kind"] == "evaluation"

    def test_unwritable_history_db_is_exit_2(self, tmp_path, capsys):
        bad = str(tmp_path / "missing-dir" / "h.db")
        assert main(["evaluate", "--tools", "p4",
                     "--history-db", bad]) == 2
        assert "cannot record history" in capsys.readouterr().out


class TestListAndShow:
    def test_list_newest_first_with_labels(self, seeded_db, capsys):
        assert main(["history", "list", "--db", seeded_db]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if "evaluation" in line]
        assert len(lines) == 2
        assert "second" in lines[0] and "first" in lines[1]

    def test_show_resolves_relative_refs(self, seeded_db, capsys):
        assert main(["history", "show", "--db", seeded_db, "latest~1"]) == 0
        out = capsys.readouterr().out
        assert "first" in out and "samples" in out

    def test_show_json_round_trips(self, seeded_db, capsys):
        assert main(["history", "show", "--db", seeded_db, "latest",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["label"] == "second"
        assert record["payload"]["spec"]["tools"] == list(TINY["tools"])

    def test_bad_reference_is_exit_2(self, seeded_db, capsys):
        assert main(["history", "show", "--db", seeded_db, "zzzz"]) == 2
        assert "error:" in capsys.readouterr().out


class TestDiffAndGate:
    def test_identical_runs_diff_clean_and_gate_passes(self, seeded_db,
                                                       capsys):
        assert main(["history", "diff", "--db", seeded_db,
                     "latest~1", "latest"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        assert main(["history", "gate", "--db", seeded_db,
                     "latest~1", "latest"]) == 0
        assert "GATE PASS" in capsys.readouterr().out

    def test_injected_slowdown_fails_the_gate(self, seeded_db, export,
                                              capsys):
        with HistoryStore(seeded_db) as store:
            store.record_result(scaled(export, 1.5, kinds=("sendrecv",)),
                                label="slow")
        # diff stays informational (exit 0) even though cells moved
        assert main(["history", "diff", "--db", seeded_db,
                     "latest~1", "latest"]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["history", "gate", "--db", seeded_db,
                     "latest~1", "latest"]) == 1
        assert "GATE FAIL" in capsys.readouterr().out

    def test_gate_json_and_tolerance_flag(self, seeded_db, export, capsys):
        with HistoryStore(seeded_db) as store:
            store.record_result(scaled(export, 1.05))
        assert main(["history", "gate", "--db", seeded_db, "--json",
                     "--tolerance", "0.2", "latest~1", "latest"]) == 0
        assert json.loads(capsys.readouterr().out)["passed"] is True

    def test_tolerances_file_conflicts_with_flag(self, seeded_db, tmp_path,
                                                 capsys):
        table = tmp_path / "tol.json"
        table.write_text('{"default": 0.5}')
        assert main(["history", "gate", "--db", seeded_db,
                     "--tolerances", str(table), "--tolerance", "0.5",
                     "latest~1", "latest"]) == 2
        assert "not both" in capsys.readouterr().out


class TestLeaderboardTrendAnalyze:
    def test_leaderboard_renders_and_jsons(self, seeded_db, capsys):
        assert main(["history", "leaderboard", "--db", seeded_db]) == 0
        assert "1. p4" in capsys.readouterr().out
        assert main(["history", "leaderboard", "--db", seeded_db,
                     "--json"]) == 0
        (board,) = json.loads(capsys.readouterr().out)
        assert board["rows"][0]["tool"] == "p4"

    def test_trend_over_recorded_runs(self, seeded_db, capsys):
        assert main(["history", "trend", "--db", seeded_db,
                     "--platform", "sun-ethernet", "--tool", "p4",
                     "--kind", "sendrecv"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out and "flat" in out

    def test_analyze_runs_clean(self, seeded_db, capsys):
        assert main(["history", "analyze", "--db", seeded_db]) == 0
        assert "recommendations:" in capsys.readouterr().out


class TestRecordCommand:
    def test_record_autodetects_export_vs_bench(self, tmp_path, export,
                                                capsys):
        db = str(tmp_path / "h.db")
        export_path = tmp_path / "run.json"
        export_path.write_text(json.dumps(export))
        bench_path = tmp_path / "BENCH_kernel.json"
        bench_path.write_text(json.dumps(
            {"benchmark": "kernel", "metrics": {"kernel_events_per_sec": 9.0}}))
        assert main(["history", "record", "--db", db, str(export_path)]) == 0
        assert main(["history", "record", "--db", db, str(bench_path)]) == 0
        capsys.readouterr()
        with HistoryStore(db) as store:
            kinds = [run["kind"] for run in store.list_runs()]
        assert sorted(kinds) == ["bench", "evaluation"]

    def test_malformed_file_is_exit_2(self, tmp_path, capsys):
        db = str(tmp_path / "h.db")
        garbage = tmp_path / "garbage.json"
        garbage.write_text('{"neither": true}')
        assert main(["history", "record", "--db", db, str(garbage)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_missing_subcommand_is_usage_error(self, capsys):
        assert main(["history"]) == 2
        assert "usage:" in capsys.readouterr().out


class TestSchemaGuardThroughCli:
    def test_foreign_database_is_refused_loudly(self, tmp_path, capsys):
        import sqlite3

        path = str(tmp_path / "future.db")
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version=99")
        db.commit()
        db.close()
        assert main(["history", "list", "--db", path]) == 2
        assert "schema v99" in capsys.readouterr().out
