"""The diff engine against hand-computed statistics.

The Welch interval here is recomputed by hand (not by calling the
code under test) so a regression in the significance math cannot hide
behind itself; the degenerate single-seed/zero-spread cases get exact
assertions.
"""

import json
import math

import pytest

from repro.core.stats import t_critical
from repro.errors import HistoryError
from repro.history import HistoryStore, Tolerances, diff_runs
from repro.history.diff import CLASSIFICATIONS, delta_interval, diff_cells

from history_helpers import scaled


def cell(platform="sun-ethernet", tool="p4", kind="sendrecv",
         params='{"nbytes":1024}', processors=4):
    return (platform, tool, kind, params, processors)


def one_cell(seeds, key=None):
    return {key or cell(): dict(enumerate(seeds))}


class TestDeltaInterval:
    def test_matches_hand_computed_welch(self):
        baseline = [1.0, 1.1, 0.9]
        current = [1.3, 1.5, 1.4]
        delta, halfwidth = delta_interval(baseline, current)
        # hand computation: sample stddev 0.1 each side, n=3
        var = (0.1 ** 2) / 3
        se = math.sqrt(2 * var)
        df = int((2 * var) ** 2 / (2 * (var ** 2 / 2)))  # == 4
        assert delta == pytest.approx(0.4)
        assert df == 4
        assert halfwidth == pytest.approx(t_critical(4, 0.95) * se)

    def test_single_seed_degenerates_to_exact_plus_minus_zero(self):
        assert delta_interval([1.0], [1.0]) == (0.0, 0.0)
        delta, halfwidth = delta_interval([1.0], [1.25])
        assert delta == pytest.approx(0.25)
        assert halfwidth == 0.0

    def test_zero_spread_multi_seed_is_also_exact(self):
        # deterministic runs: three seeds, identical values
        _, halfwidth = delta_interval([2.0, 2.0, 2.0], [2.5, 2.5, 2.5])
        assert halfwidth == 0.0

    def test_one_sided_spread_uses_only_that_variance(self):
        baseline = [1.0]                    # no variance contribution
        current = [2.0, 2.2, 1.8]
        delta, halfwidth = delta_interval(baseline, current)
        var_b = (0.2 ** 2) / 3
        assert delta == pytest.approx(1.0)
        # df collapses to the spreadful side's n-1 = 2
        assert halfwidth == pytest.approx(
            t_critical(2, 0.95) * math.sqrt(var_b))


class TestClassification:
    def test_significant_beyond_tolerance_is_a_regression(self):
        diff = diff_cells(one_cell([1.0]), one_cell([1.5]))
        (delta,) = diff.cells
        assert delta.classification == "regression"
        assert delta.significant
        assert delta.relative == pytest.approx(0.5)

    def test_speedup_is_an_improvement(self):
        diff = diff_cells(one_cell([1.0]), one_cell([0.5]))
        assert diff.cells[0].classification == "improvement"

    def test_single_seed_zero_delta_is_noise_not_regression(self):
        diff = diff_cells(one_cell([1.0]), one_cell([1.0]))
        (delta,) = diff.cells
        assert delta.classification == "noise"
        assert not delta.significant

    def test_significant_within_tolerance_reads_as_noise(self):
        # deterministic +1% move: significant (±0 interval) but under
        # the 2% default tolerance
        diff = diff_cells(one_cell([1.0]), one_cell([1.01]))
        (delta,) = diff.cells
        assert delta.significant
        assert delta.classification == "noise"

    def test_insignificant_large_delta_is_noise(self):
        # wildly overlapping spreads: |delta| under the Welch interval
        diff = diff_cells(one_cell([1.0, 2.0, 3.0]), one_cell([1.1, 2.1, 3.3]))
        (delta,) = diff.cells
        assert not delta.significant
        assert delta.classification == "noise"

    def test_tolerance_table_applies_per_kind(self):
        tolerances = Tolerances(default=0.02, kinds={"sendrecv": 0.75})
        diff = diff_cells(one_cell([1.0]), one_cell([1.5]),
                          tolerances=tolerances)
        assert diff.cells[0].classification == "noise"
        assert diff.cells[0].tolerance == 0.75

    def test_added_removed_and_unmeasured(self):
        gone = cell(tool="pvm", kind="global_sum", params='{"vector_ints":100}')
        na = cell(tool="pvm", kind="broadcast")
        baseline = {**one_cell([1.0]), gone: {0: 2.0}, na: {0: None}}
        current = {**one_cell([1.0]),
                   cell(tool="mpi"): {0: 1.0}, na: {0: None}}
        by_class = diff_cells(baseline, current).by_classification()
        assert [c.tool for c in by_class["removed"]] == ["pvm"]
        assert [c.tool for c in by_class["added"]] == ["mpi"]
        assert [c.tool for c in by_class["unmeasured"]] == ["pvm"]
        assert len(by_class["noise"]) == 1

    def test_cells_come_back_in_deterministic_order(self):
        baseline = {cell(tool=t): {0: 1.0} for t in ("p4", "mpi", "pvm")}
        diff_a = diff_cells(baseline, baseline)
        diff_b = diff_cells(dict(reversed(list(baseline.items()))), baseline)
        assert ([c.label() for c in diff_a.cells]
                == [c.label() for c in diff_b.cells]
                == sorted(c.label() for c in diff_a.cells))


class TestTolerances:
    def test_from_mapping_and_kind_lookup(self):
        tolerances = Tolerances.from_mapping(
            {"default": 0.1, "kinds": {"broadcast": 0.3}})
        assert tolerances.for_kind("broadcast") == 0.3
        assert tolerances.for_kind("sendrecv") == 0.1

    def test_rejects_unknown_fields_and_bad_values(self, tmp_path):
        with pytest.raises(HistoryError, match="unknown tolerance fields"):
            Tolerances.from_mapping({"defualt": 0.1})
        with pytest.raises(HistoryError, match="finite non-negative"):
            Tolerances(default=-0.5)
        with pytest.raises(HistoryError, match="finite non-negative"):
            Tolerances(kinds={"ring": float("nan")})
        missing = tmp_path / "nope.json"
        with pytest.raises(HistoryError, match="cannot read"):
            Tolerances.from_file(str(missing))

    def test_from_file(self, tmp_path):
        path = tmp_path / "tol.json"
        path.write_text(json.dumps({"default": 0.25}))
        assert Tolerances.from_file(str(path)).default == 0.25


class TestDiffRuns:
    def test_real_runs_with_injected_slowdown(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 1.5, kinds=("sendrecv",)))
        diff = diff_runs(store, "latest~1", "latest")
        summary = diff.summary()
        assert summary["regression"] == 1  # the one sendrecv cell
        assert summary["regression"] + summary["noise"] == len(diff.cells)
        (regressed,) = diff.regressions
        assert regressed.kind == "sendrecv"
        assert regressed.relative == pytest.approx(0.5, rel=1e-6)

    def test_identical_runs_do_not_move(self, store, export):
        store.record_result(export)
        store.record_result(export)
        diff = diff_runs(store, "latest~1", "latest")
        assert diff.moved == []
        assert "0 regression(s)" in diff.render()

    def test_to_dict_is_json_safe_and_complete(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 2.0))
        payload = diff_runs(store, "latest~1", "latest").to_dict()
        json.dumps(payload)  # must not raise
        assert set(payload["summary"]) == set(CLASSIFICATIONS)
        assert len(payload["cells"]) == len(store.cells(
            store.resolve("latest")))
