"""Shared fixtures: one real multi-seed export, reused by every test.

The export comes from an actual scheduler run (noise on, three seeds,
one tool) so the store/diff tests exercise the real ResultSet shape —
but it is computed once per session and cloned per test, because the
simulation is the slow part.
"""

import copy

import pytest

from repro.core.scheduler import Scheduler
from repro.history import HistoryStore

from history_helpers import tiny_spec


@pytest.fixture(scope="session")
def _base_export():
    spec = tiny_spec(seeds=(0, 1, 2), noise=1.0)
    return Scheduler().run(spec).to_dict()


@pytest.fixture
def export(_base_export):
    """A fresh deep copy per test — mutate freely."""
    return copy.deepcopy(_base_export)


@pytest.fixture
def store(tmp_path):
    with HistoryStore(str(tmp_path / "history.db")) as history_store:
        yield history_store
