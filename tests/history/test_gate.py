"""The perf gate's policy: exit codes, allowances, removed cells."""

import pytest

from repro.history import Tolerances, run_gate
from repro.history.diff import diff_cells
from repro.history.gate import judge

from history_helpers import scaled


def cells(values, tool="p4"):
    return {
        ("net", tool, "sendrecv", '{"nbytes":%d}' % (1024 * (i + 1)), 4):
            {0: value}
        for i, value in enumerate(values)
    }


class TestJudge:
    def test_clean_diff_passes(self):
        verdict = judge(diff_cells(cells([1.0, 2.0]), cells([1.0, 2.0])))
        assert verdict.passed
        assert verdict.exit_code == 0
        assert "GATE PASS" in verdict.render()

    def test_single_regression_fails_by_default(self):
        verdict = judge(diff_cells(cells([1.0, 2.0]), cells([1.5, 2.0])))
        assert not verdict.passed
        assert verdict.exit_code == 1
        assert len(verdict.reasons) == 1
        assert "GATE FAIL" in verdict.render()

    def test_max_regressions_allowance(self):
        diff = diff_cells(cells([1.0, 2.0]), cells([1.5, 2.0]))
        assert judge(diff, max_regressions=1).passed
        two = diff_cells(cells([1.0, 2.0]), cells([1.5, 3.0]))
        verdict = judge(two, max_regressions=1)
        assert not verdict.passed
        assert any("exceed the allowance" in reason
                   for reason in verdict.reasons)

    def test_improvements_never_fail(self):
        verdict = judge(diff_cells(cells([1.0, 2.0]), cells([0.5, 1.0])))
        assert verdict.passed

    def test_removed_cells_fail_only_when_asked(self):
        diff = diff_cells(cells([1.0, 2.0]), cells([1.0]))
        assert judge(diff).passed
        verdict = judge(diff, fail_on_removed=True)
        assert not verdict.passed
        assert any("removed from grid" in reason
                   for reason in verdict.reasons)

    def test_verdict_to_dict_carries_the_diff(self):
        verdict = judge(diff_cells(cells([1.0]), cells([2.0])))
        payload = verdict.to_dict()
        assert payload["exit_code"] == 1
        assert payload["diff"]["summary"]["regression"] == 1


class TestRunGate:
    def test_pass_and_fail_against_real_runs(self, store, export):
        store.record_result(export)
        store.record_result(export)
        assert run_gate(store, "latest~1", "latest").exit_code == 0
        store.record_result(scaled(export, 1.5))
        assert run_gate(store, "latest~1", "latest").exit_code == 1

    def test_tolerances_rescue_small_moves(self, store, export):
        store.record_result(export)
        store.record_result(scaled(export, 1.04))
        assert run_gate(store, "latest~1", "latest").exit_code == 1
        lenient = run_gate(store, "latest~1", "latest",
                           tolerances=Tolerances(default=0.10))
        assert lenient.exit_code == 0
