"""HistoryStore: schema, round-trip, references, migration guard."""

import json
import sqlite3
import threading

import pytest

from repro.errors import HistoryError
from repro.history import SCHEMA_VERSION, HistoryStore
from repro.history.store import flatten_metrics
from repro.service.store import spec_hash

from history_helpers import scaled


class TestRecordResult:
    def test_round_trips_the_full_export(self, store, export):
        run_id = store.record_result(export, label="baseline", source="test")
        record = store.get(run_id)
        assert record["payload"] == export
        assert record["kind"] == "evaluation"
        assert record["label"] == "baseline"
        assert record["source"] == "test"
        assert record["spec_hash"] == spec_hash(export["spec"])
        assert record["noise"] == export["spec"]["noise"]

    def test_provenance_derived_from_telemetry(self, store, export):
        record = store.get(store.record_result(export))
        summary = export["telemetry"]["summary"]
        assert record["simulated"] == summary["simulated"]
        assert record["cache_hits"] == summary["cache_hits"]
        assert record["engine"] == "event"
        assert record["backend"] == ",".join(summary["executors"])

    def test_samples_denormalize_per_cell(self, store, export):
        run_id = store.record_result(export)
        rows = store.samples_for(run_id)
        assert len(rows) == len(export["samples"])
        # every sendrecv row carries its nbytes as the size axis
        sendrecv = [row for row in rows if row["kind"] == "sendrecv"]
        assert sendrecv and all(row["size"] == 1024 for row in sendrecv)
        # applications have no size axis
        apps = [row for row in rows if row["kind"] == "application"]
        assert apps and all(row["size"] is None for row in apps)

    def test_cells_group_seeds_together(self, store, export):
        run_id = store.record_result(export)
        cells = store.cells(run_id)
        seeds = set(export["spec"]["seeds"])
        assert all(set(per_seed) == seeds for per_seed in cells.values())
        # 3 sendrecv-ish TPL kinds x 1 size + global_sum + 1 app = 5
        assert len(cells) == 5

    def test_scores_match_export_statistics(self, store, export):
        run_id = store.record_result(export)
        rows = store.scores_for([run_id])
        by_cell = {(r["platform"], r["profile"], r["tool"]): r for r in rows}
        for cell, tools in export["statistics"].items():
            platform, _, profile = cell.partition("/")
            for tool, stats in tools.items():
                row = by_cell[(platform, profile, tool)]
                assert row["mean"] == pytest.approx(stats["mean"])
                assert row["stddev"] == pytest.approx(stats["stddev"])
                assert row["n"] == stats["n"]

    def test_rejects_non_exports(self, store):
        with pytest.raises(HistoryError, match="no 'spec'"):
            store.record_result({"samples": []})
        with pytest.raises(HistoryError, match="no 'samples'"):
            store.record_result({"spec": {"tools": ["p4"]}})

    def test_record_is_thread_safe(self, store, export):
        errors = []

        def record():
            try:
                for _ in range(5):
                    store.record_result(export)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store.list_runs()) == 20
        assert store.stats()["recorded"] == 20


class TestRecordBench:
    REPORT = {
        "benchmark": "kernel",
        "python": "3.12.0",
        "metrics": {"kernel_events_per_sec": 1.0e6,
                    "pool": {"amortization_ratio": 3.2}},
    }

    def test_round_trip_and_metric_paths(self, store):
        run_id = store.record_bench(self.REPORT)
        record = store.get(run_id)
        assert record["kind"] == "bench"
        assert record["label"] == "kernel"  # defaults to the stamp
        assert record["payload"] == self.REPORT
        trend = store.metric_trend("metrics.pool.amortization_ratio")
        assert [point["value"] for point in trend] == [3.2]

    def test_rejects_non_reports(self, store):
        with pytest.raises(HistoryError, match="no 'metrics'"):
            store.record_bench({"benchmark": "kernel"})

    def test_flatten_matches_bench_report_view(self):
        flat = flatten_metrics({"metrics": self.REPORT["metrics"]})
        assert flat == {
            "metrics.kernel_events_per_sec": 1.0e6,
            "metrics.pool.amortization_ratio": 3.2,
        }


class TestResolve:
    def test_exact_prefix_latest_and_relative(self, store, export):
        first = store.record_result(export)
        second = store.record_result(export)
        assert store.resolve(first) == first
        assert store.resolve(first[:6]) == first
        assert store.resolve("latest") == second
        assert store.resolve("latest~1") == first

    def test_latest_respects_kind_filter(self, store, export):
        run_id = store.record_result(export)
        store.record_bench(TestRecordBench.REPORT)
        assert store.resolve("latest", kind="evaluation") == run_id

    def test_miss_ambiguity_and_malformed_are_loud(self, store, export):
        store.record_result(export)
        with pytest.raises(HistoryError, match="no recorded run"):
            store.resolve("zzzz")
        with pytest.raises(HistoryError, match="malformed"):
            store.resolve("latest~-1")
        with pytest.raises(HistoryError, match="needs 5"):
            store.resolve("latest~4")

    def test_ambiguous_prefix_names_candidates(self, store, export):
        ids = [store.record_result(export) for _ in range(40)]
        prefixes = {run_id[0] for run_id in ids}
        clash = next(p for p in prefixes
                     if sum(run_id.startswith(p) for run_id in ids) > 1)
        with pytest.raises(HistoryError, match="ambiguous"):
            store.resolve(clash)


class TestListRuns:
    def test_newest_first_and_limited(self, store, export):
        ids = [store.record_result(export) for _ in range(3)]
        runs = store.list_runs(limit=2)
        assert [run["run_id"] for run in runs] == [ids[2], ids[1]]
        assert all("payload_json" not in run for run in runs)

    def test_unknown_kind_is_refused(self, store):
        with pytest.raises(HistoryError, match="unknown run kind"):
            store.list_runs(kind="nonsense")


class TestTrends:
    def test_sample_trend_is_chronological_means(self, store, export):
        base_id = store.record_result(export)
        slow_id = store.record_result(scaled(export, 2.0))
        points = store.sample_trend("sun-ethernet", "p4", "sendrecv",
                                    size=1024)
        assert [point["run_id"] for point in points] == [base_id, slow_id]
        assert points[1]["mean_seconds"] == pytest.approx(
            2.0 * points[0]["mean_seconds"])
        assert points[0]["n"] == len(export["spec"]["seeds"])


class TestMigrationGuard:
    def test_refuses_foreign_schema_generation(self, tmp_path):
        path = str(tmp_path / "future.db")
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version=%d" % (SCHEMA_VERSION + 98))
        db.commit()
        db.close()
        with pytest.raises(HistoryError, match="schema v99"):
            HistoryStore(path)

    def test_reopening_same_generation_is_fine(self, tmp_path, export):
        path = str(tmp_path / "stable.db")
        with HistoryStore(path) as first:
            run_id = first.record_result(export)
        with HistoryStore(path) as second:
            assert second.get(run_id)["payload"] == export

    def test_unknown_run_is_loud(self, store):
        with pytest.raises(HistoryError, match="unknown run"):
            store.get("feedfacecafe")

    def test_stamps_fresh_databases(self, tmp_path):
        path = str(tmp_path / "fresh.db")
        HistoryStore(path).close()
        db = sqlite3.connect(path)
        try:
            assert db.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        finally:
            db.close()


class TestPayloadFidelity:
    def test_payload_json_is_canonical(self, store, export):
        run_id = store.record_result(export)
        with store._lock:
            raw = store._db.execute(
                "SELECT payload_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()[0]
        assert raw == json.dumps(export, sort_keys=True)
