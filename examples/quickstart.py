"""Quickstart: evaluate the three tools on one platform.

Runs the full multi-level methodology (TPL micro-benchmarks, the four
SU PDABS applications, the usability matrix) on the SUN/Ethernet
configuration and prints the weighted report.

    python examples/quickstart.py [platform]
"""

import sys

from repro import evaluate_tools


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "sun-ethernet"
    print("Evaluating Express, p4 and PVM on %s ..." % platform)
    report = evaluate_tools(platform=platform, processors=4)
    print()
    print(report.summary())
    print()
    print("Ranking: %s" % " > ".join(report.ranking()))


if __name__ == "__main__":
    main()
