"""Evaluation-as-a-service: submit, stream, cancel, restart, resume.

``repro serve`` turns the streaming scheduler into a long-running job
server: specs go in over HTTP, typed events come back over
Server-Sent Events, and every run is persisted to SQLite so a
restarted server still knows its history.  This demo drives the whole
journey against a real server subprocess:

1. boot ``repro serve`` on an ephemeral port (``--port 0``) with a
   persistent database and cache directory,
2. submit a sweep and follow its event stream live — the same
   ``JobStarted`` / ``JobFinished`` / ``RunCompleted`` objects a local
   ``RunHandle`` yields,
3. submit a bigger sweep and cancel it mid-flight: the run ends
   ``cancelled`` with its partial results persisted,
4. stop the server with SIGTERM (graceful: in-flight work lands),
5. restart over the same database: the history is all there, and
   resubmitting the cancelled spec simulates only the jobs the first
   attempt never finished — the rest are cache hits.

Run with::

    PYTHONPATH=src python examples/service_demo.py
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from repro.core.progress import CacheHit, JobFinished, RunCompleted
from repro.service.client import ServiceClient

#: A seconds-scale sweep for the happy path.
QUICK_SPEC = {
    "tools": ["p4", "express"],
    "tpl_sizes": [1024],
    "global_sum_ints": 5_000,
    "apps": ["montecarlo"],
    "app_params": {"montecarlo": {"samples": 20_000}},
}

#: A heavier grid so a mid-flight cancel lands before it finishes.
SLOW_SPEC = {
    "tools": ["p4", "express", "pvm", "mpi"],
    "tpl_sizes": [1024, 16384],
    "global_sum_ints": 20_000,
    "apps": ["montecarlo"],
    "app_params": {"montecarlo": {"samples": 300_000}},
}

#: Cancel the slow sweep after this many finished jobs.
CANCEL_AFTER = 3


def start_server(db_path: str, cache_dir: str) -> "tuple[subprocess.Popen, int]":
    """Boot ``repro serve --port 0`` and parse the bound port."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--db", db_path, "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=dict(os.environ),
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before binding a port")
        print("  server| %s" % line.rstrip())
        match = re.search(r"serving on http://([\d.]+):(\d+)", line)
        if match:
            return process, int(match.group(2))
    raise RuntimeError("server never reported its port")


def stop_server(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    for line in output.splitlines():
        print("  server| %s" % line)
    print("  server exited with code %d" % process.returncode)


def narrate(event) -> str:
    if isinstance(event, JobFinished):
        return "simulated  %s" % event.job.short_label()
    if isinstance(event, CacheHit):
        return "cache hit  %s" % event.job.short_label()
    if isinstance(event, RunCompleted):
        return ("done: %d jobs (%d simulated, %d cached%s)"
                % (event.total, event.simulated, event.cache_hits,
                   ", cancelled" if event.cancelled else ""))
    return ""


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="repro-service-")
    db_path = os.path.join(workspace, "runs.db")
    cache_dir = os.path.join(workspace, "cache")
    try:
        # -- 1: boot ---------------------------------------------------
        print("booting repro serve (db=%s):" % db_path)
        server, port = start_server(db_path, cache_dir)
        client = ServiceClient(port=port, user="demo")
        print("  health: %s" % client.health())

        # -- 2: submit and stream --------------------------------------
        print()
        print("submitting the quick sweep and streaming its events:")
        quick = client.submit(QUICK_SPEC)
        for event in client.events(quick):
            line = narrate(event)
            if line:
                print("  [%s] %s" % (quick, line))
        record = client.run(quick)
        print("  state=%s scores=%s" % (record["state"],
                                        record["result"]["scores"]))

        # -- 3: cancel a bigger sweep mid-flight -----------------------
        print()
        print("submitting the slow sweep, cancelling after %d jobs:"
              % CANCEL_AFTER)
        slow = client.submit(SLOW_SPEC)
        finished = 0
        for event in client.events(slow):
            line = narrate(event)
            if line:
                print("  [%s] %s" % (slow, line))
            if isinstance(event, JobFinished):
                finished += 1
                if finished == CANCEL_AFTER:
                    print("  -> POST /api/runs/%s/cancel" % slow)
                    client.cancel(slow)
        cancelled = client.run(slow)
        print("  state=%s, %d partial sample(s) persisted"
              % (cancelled["state"],
                 len((cancelled["result"] or {}).get("samples", ()))))

        # -- 4: graceful shutdown --------------------------------------
        print()
        print("stopping the server with SIGTERM:")
        stop_server(server)

        # -- 5: restart over the same database and cache ---------------
        print()
        print("restarting over the same --db/--cache-dir:")
        server, port = start_server(db_path, cache_dir)
        client = ServiceClient(port=port, user="demo")
        print("  history after restart:")
        for run in client.runs():
            print("    %s  %-9s  simulated=%s cache_hits=%s"
                  % (run["run_id"], run["state"],
                     run["simulated"], run["cache_hits"]))
        print("  resubmitting the cancelled spec:")
        resumed = client.submit(SLOW_SPEC)
        final = client.wait(resumed)
        print("  state=%s: %d simulated, %d from cache"
              % (final["state"], final["simulated"], final["cache_hits"]))
        assert final["state"] == "completed"
        assert final["cache_hits"] >= CANCEL_AFTER
        print()
        print("stopping the server:")
        stop_server(server)
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
