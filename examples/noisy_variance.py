"""Real simulated variance: the --noise knob and honest error bars.

By default the simulator is exactly deterministic — re-running a seed
reproduces identical timings, so a multi-seed confidence interval is
honestly ±0.  That is the right default for regression pinning, but
it means the Student-t machinery never sees real spread.

``EvaluationSpec(noise=...)`` (CLI: ``repro evaluate --noise``) turns
on each platform's seeded stochastic network model — Ethernet CSMA/CD
backoff, FDDI token-rotation jitter, ATM/crossbar switch jitter — so
different seeds measure genuinely different runs while each
(platform, processors, seed, noise) triple stays bit-reproducible.
Noisy and deterministic runs are distinct cache entries, so the two
sweeps below never cross-contaminate.

Run with::

    PYTHONPATH=src python examples/noisy_variance.py
"""

from repro.core import EvaluationSpec, Scheduler

#: Small workloads keep the example interactive.
QUICK = dict(
    tools=("p4", "express"),
    platforms=("sun-ethernet",),
    processors=4,
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 20_000}},
    seeds=(0, 1, 2),
)


def main() -> None:
    deterministic = EvaluationSpec(**QUICK)
    noisy = deterministic.with_(noise=1.0)

    scheduler = Scheduler()
    det_results = scheduler.run(deterministic)
    noisy_results = scheduler.run(noisy)
    print("simulated %d jobs (%d per sweep: the noisy grid shares no "
          "cache entries with the deterministic one)"
          % (scheduler.simulations_run, deterministic.job_count()))
    print()

    print("deterministic seeds — replication is exact, CIs are ±0:")
    print(det_results.comparison(stats=True))
    print()
    print("noise=1.0 — same seeds, real simulated spread:")
    print(noisy_results.comparison(stats=True))
    print()

    stats = noisy_results.seed_statistics()
    for (platform, profile, tool), cell in sorted(stats.items()):
        print("%s/%s %-8s mean=%.4f stddev=%.2e 95%% CI ±%.2e"
              % (platform, profile, tool, cell.mean, cell.stddev,
                 cell.ci_halfwidth))

    # Reproducibility survives the noise: simulating the noisy spec
    # from scratch lands on bit-identical samples.
    rerun = Scheduler().run(noisy)
    assert rerun.values == noisy_results.values
    print()
    print("re-simulating the noisy sweep reproduced all %d samples "
          "bit-for-bit" % len(rerun.values))


if __name__ == "__main__":
    main()
