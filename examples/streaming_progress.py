"""Streaming execution: live progress, cooperative cancel, resume.

``Scheduler.run`` blocks until a sweep is done; for a measurement
*campaign* — the grids the paper's methodology is built for — you want
to watch it and steer it.  ``Scheduler.start`` returns a ``RunHandle``
whose ``events()`` narrate the run live (``JobStarted`` /
``JobFinished`` / ``CacheHit`` / ``RunCompleted``), whose
``progress()`` snapshots done/total/hit-rate/ETA any time, and whose
``cancel()`` stops dispatching while in-flight jobs finish and
persist.

The demo makes the control loop concrete:

1. start a sweep over a disk cache and render progress from events,
2. cancel it partway — ``result()`` raises ``RunCancelled``, but every
   finished job is already in the cache,
3. resume by re-running the same spec over the same cache: only the
   never-finished jobs simulate, narrated by ``CacheHit`` events.

Run with::

    PYTHONPATH=src python examples/streaming_progress.py
"""

import shutil
import tempfile

from repro.core import EvaluationSpec, Scheduler
from repro.core.progress import CacheHit, JobFinished, RunCompleted
from repro.errors import RunCancelled

#: Small workloads keep the example interactive.
SPEC = EvaluationSpec(
    tools=("express", "p4", "pvm"),
    tpl_sizes=(1024, 16384),
    global_sum_ints=5_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 20_000}},
)

#: Cancel the first launch after this many finished jobs.
CANCEL_AFTER = 6


def narrate(event, handle) -> None:
    """One log line per event — what a progress bar would consume."""
    snapshot = handle.progress()
    if isinstance(event, JobFinished):
        print("  [%2d/%d] simulated  %-28s %.0f us"
              % (snapshot.completed, snapshot.total,
                 event.job.short_label(), event.wall_seconds * 1e6))
    elif isinstance(event, CacheHit):
        print("  [%2d/%d] cache hit  %s"
              % (snapshot.completed, snapshot.total, event.job.short_label()))
    elif isinstance(event, RunCompleted):
        print("  %s" % snapshot.render())


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-stream-")
    try:
        print("sweep: %d jobs over cache %s" % (SPEC.job_count(), cache_dir))

        # -- 1+2: a streaming run, cancelled partway -------------------
        print()
        print("first launch (cancelling after %d jobs):" % CANCEL_AFTER)
        first = Scheduler(cache_dir=cache_dir)
        handle = first.start(SPEC)
        finished = 0
        for event in handle.events():
            narrate(event, handle)
            if isinstance(event, JobFinished):
                finished += 1
                if finished == CANCEL_AFTER:
                    print("  -> cancel(): queued jobs are dropped, "
                          "in-flight ones finish and persist")
                    handle.cancel()
        try:
            handle.result()
        except RunCancelled as cancelled:
            print("  result(): RunCancelled — %s" % cancelled)
        done = handle.progress().simulated

        # -- 3: resume over the same cache directory -------------------
        print()
        print("relaunch over the same cache (fresh process, fresh scheduler):")
        resumed = Scheduler(cache_dir=cache_dir)
        hits = {"n": 0}

        def count_hits(event):
            if isinstance(event, CacheHit):
                hits["n"] += 1

        results = resumed.run(SPEC, on_event=count_hits)
        print("  simulated %d jobs, %d served from cache (expected %d + %d)"
              % (resumed.simulations_run, hits["n"],
                 SPEC.job_count() - done, done))
        assert resumed.simulations_run == SPEC.job_count() - done

        print()
        print(results.comparison())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
