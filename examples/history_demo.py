"""Regression intelligence: run history, cross-run diffs, a perf gate.

Single evaluations answer "which tool wins today?".  The history
subsystem answers the questions a long-lived reproduction actually
faces: did last night's commit slow the sendrecv sweep down, is that
movement noise or signal, and which tool has been winning lately?

This example walks the whole loop in-process:

1. record two honest evaluation runs into a SQLite history store;
2. diff them — every cell is classified ``noise`` because nothing
   changed, and the gate passes;
3. replay a third run with a deliberate 1.5x sendrecv slowdown —
   the diff flags the moved cells as regressions with Welch
   confidence intervals, and the CI gate fails with exit-code
   semantics a pipeline can act on;
4. print the tool leaderboard aggregated over the recorded window.

The same store backs ``repro evaluate --history-db``, the
``repro history`` CLI, and the service's ``/api/history`` routes.

Run with::

    PYTHONPATH=src python examples/history_demo.py
"""

import copy
import os
import tempfile

from repro.core import EvaluationSpec, Scheduler
from repro.history import (
    HistoryStore,
    diff_runs,
    leaderboards,
    run_gate,
)

#: Small grid keeps the example interactive; three seeds give the
#: Welch intervals something to work with.
SPEC = EvaluationSpec(
    tools=("p4", "pvm"),
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
    seeds=(0, 1, 2),
    noise=1.0,
)


def slowed(export, factor, kinds=("sendrecv",)):
    """A copy of an export with the given measurement kinds scaled."""
    copied = copy.deepcopy(export)
    for sample in copied["samples"]:
        if sample["kind"] in kinds and sample["seconds"] is not None:
            sample["seconds"] *= factor
    return copied


def gate_line(verdict):
    """The verdict line of a gate render (the diff table precedes it)."""
    return next(line for line in verdict.render().splitlines()
                if line.startswith("GATE"))


def main() -> None:
    export = Scheduler().run(SPEC).to_dict()

    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "history.db")
        with HistoryStore(path) as store:
            store.record_result(export, label="monday", source="api")
            store.record_result(export, label="tuesday", source="api")

            print("two honest runs recorded:")
            for run in reversed(store.list_runs()):
                print("  %s  %s" % (run["run_id"][:12], run["label"]))

            diff = diff_runs(store, "latest~1", "latest")
            print("\ndiff monday..tuesday (nothing changed):")
            print("  " + diff.render().splitlines()[-1])
            verdict = run_gate(store, "latest~1", "latest")
            print("  " + gate_line(verdict))
            assert verdict.exit_code == 0

            # A bad commit lands: sendrecv gets 1.5x slower.
            store.record_result(slowed(export, 1.5), label="wednesday",
                                source="api")
            diff = diff_runs(store, "latest~1", "latest")
            print("\ndiff tuesday..wednesday (sendrecv 1.5x slower):")
            for delta in diff.regressions:
                print("  REGRESSION %-38s %+.1f%% (+/- %.1f%%)"
                      % (delta.label(), 100 * delta.relative,
                         100 * delta.ci_halfwidth / delta.baseline.mean))
            verdict = run_gate(store, "latest~1", "latest")
            print("  " + gate_line(verdict))
            assert verdict.exit_code == 1

            # Leaderboard over every run in the window, best first.
            print("\nleaderboards over the recorded window:")
            for board in leaderboards(store, window=10):
                print("  %s / %s -> winner: %s"
                      % (board.platform, board.profile, board.winner))


if __name__ == "__main__":
    main()
