"""A multi-platform, multi-profile evaluation sweep in one spec.

The paper evaluates three tools on one platform at a time with one
set of weights.  The declarative plan API turns that into a grid:
describe every axis once, let the scheduler simulate each distinct
measurement exactly once, and re-score the cached samples under as
many weight profiles as you like — here 3 platforms x 3 tools x 3
profiles, or 9 scored reports from a single measurement pass.

The second half shows the persistence story: the same sweep behind a
``cache_dir=`` survives its process — a killed run re-launched over
the same directory simulates only the jobs it never finished — and a
multi-seed spec reports every cell as mean ±95% CI.

Run with::

    PYTHONPATH=src python examples/sweep_grid.py
"""

import shutil
import tempfile

from repro.core import EvaluationSpec, ResultCache, Scheduler, create_executor

#: Small workloads keep the example interactive; drop the overrides
#: for the paper-sized runs.
QUICK_APPS = {
    "jpeg": {"height": 64, "width": 64},
    "fft2d": {"size": 32},
    "montecarlo": {"samples": 20_000},
    "psrs": {"keys": 5_000},
}


def main() -> None:
    spec = EvaluationSpec(
        tools=("express", "p4", "pvm"),
        platforms=("sun-ethernet", "sun-atm-lan", "alpha-fddi"),
        processors=4,
        tpl_sizes=(1024, 16384),
        global_sum_ints=5_000,
        app_params=QUICK_APPS,
        profiles=("balanced", "end-user", "tool-developer"),
    )
    print("grid: %d tools x %d platforms x %d profiles -> %d jobs, %d reports"
          % (len(spec.tools), len(spec.platforms), len(spec.profiles),
             spec.job_count(), len(spec.cells())))

    cache = ResultCache()
    scheduler = Scheduler(executor=create_executor(jobs=1), cache=cache)
    results = scheduler.run(spec)
    print("simulated %d jobs (profiles cost none: weighting is free)"
          % scheduler.simulations_run)
    print()
    print(results.comparison())
    print()

    # Growing the sweep reuses the cache: only the new platform's jobs run.
    wider = spec.with_(platforms=spec.platforms + ("sun-atm-wan",))
    before = scheduler.simulations_run
    wider_results = scheduler.run(wider)
    print("adding sun-atm-wan simulated only %d new jobs (%d cache hits)"
          % (scheduler.simulations_run - before, cache.hits))
    print()

    best = wider_results.best_tools()
    winners = sorted(set(best.values()))
    print("winners across the %d-cell grid: %s" % (len(best), ", ".join(winners)))

    # The spec is data: persist it for a colleague (or a cluster job).
    print()
    print("spec as JSON (first 3 lines):")
    print("\n".join(wider.to_json().splitlines()[:3] + ["  ..."]))

    # -- Persistence: a killed sweep resumes from its cache directory.
    print()
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    try:
        seeded = spec.with_(platforms=("sun-ethernet",), seeds=(0, 1, 2))

        # "First launch": simulate only one seed's TPL jobs, then die.
        interrupted = Scheduler(cache_dir=cache_dir)
        interrupted.run_jobs(seeded.tpl_jobs("sun-ethernet", 0))
        done = interrupted.simulations_run
        print("interrupted sweep persisted %d/%d jobs to %s"
              % (done, seeded.job_count(), cache_dir))

        # "Relaunch": a fresh process (fresh Scheduler) over the same
        # directory picks up exactly where the first one stopped.
        resumed = Scheduler(cache_dir=cache_dir)
        stats_results = resumed.run(seeded)
        print("resume simulated only the missing %d jobs (expected %d)"
              % (resumed.simulations_run, seeded.job_count() - done))

        # Seeds are the replication axis: report cells as mean ±95% CI.
        print()
        print(stats_results.comparison(stats=True))
        telemetry = stats_results.to_dict()["telemetry"]["summary"]
        print()
        print("telemetry: %(simulated)d simulated, %(cache_hits)d cache "
              "hits, %(total_wall_seconds).3fs simulating" % telemetry)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
