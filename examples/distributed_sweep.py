"""Distributed execution: a coordinator fanning a sweep over a worker
fleet, surviving a SIGKILLed worker mid-run.

``repro evaluate --backend remote --queue DIR`` (or a
``RemoteExecutor`` in code, as here) does no simulation itself: it
publishes each ``MeasurementJob`` as a ticket in an on-disk queue and
streams outcomes back as ``repro worker`` processes claim, execute and
complete them through the shared content-addressed cache.  The demo
walks the whole story:

1. create a **sharded cache** first — ``manifest.json`` records the
   shard roster, so every later opener (the workers below pass no
   ``--shards`` at all) adopts the same routing instead of drifting,
2. boot two real ``repro worker`` subprocesses against the queue,
3. run a sweep through ``Scheduler.start`` + ``RemoteExecutor`` and
   follow the live event stream,
4. **SIGKILL one worker mid-run**: its in-flight lease stops
   heartbeating, goes stale, and is reclaimed — the surviving worker
   re-runs exactly the lost tickets and the sweep still completes
   with every job accounted for,
5. re-run the same spec over the same cache directory: zero
   simulations, no fleet needed — the measurements are durable.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py
"""

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile

from repro.core.cache import ResultCache
from repro.core.progress import CacheHit, JobFinished, RunCompleted
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.distributed import RemoteExecutor

#: ~100 ms of simulation per job: slow enough that the SIGKILL below
#: almost certainly catches worker-1 holding a claim.
SPEC = EvaluationSpec(
    tools=("p4", "express", "pvm", "mpi"),
    tpl_sizes=(1048576,),
    global_sum_ints=20_000,
    apps=("matmul",),
    app_params={"matmul": {"n": 96}},
)

#: Kill worker-1 after this many finished jobs.
KILL_AFTER = 4

#: Seconds without a heartbeat before a claim is reclaimable.  Short,
#: so the demo shows the reclaim instead of waiting on it.
LEASE_TIMEOUT = 1.5


def start_worker(name, queue_dir, cache_dir, workspace):
    """Boot one ``repro worker``; stdout goes to ``<name>.log``."""
    log_path = os.path.join(workspace, name + ".log")
    log = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--queue", queue_dir, "--cache-dir", cache_dir,
         "--worker-id", name, "--poll", "0.05",
         "--lease-timeout", str(LEASE_TIMEOUT)],
        stdout=log, stderr=subprocess.STDOUT, text=True,
        env=dict(os.environ),
    )
    return process, log_path


def worker_tickets(log_path):
    """The tickets a worker's log claims it completed."""
    with open(log_path) as handle:
        return re.findall(r"ticket=(\S+)", handle.read())


def main() -> None:
    workspace = tempfile.mkdtemp(prefix="repro-distributed-")
    queue_dir = os.path.join(workspace, "queue")
    cache_dir = os.path.join(workspace, "cache")
    workers = {}
    try:
        # -- 1: the shard roster is decided once, up front -------------
        print("creating the shared cache (2 shards, recorded in manifest.json):")
        ResultCache.on_disk(cache_dir, shards=2)
        print("  %s" % sorted(os.listdir(cache_dir)))

        # -- 2: boot the fleet -----------------------------------------
        print()
        print("booting two repro worker processes (no --shards passed:")
        print("they adopt the recorded roster):")
        logs = {}
        for name in ("worker-1", "worker-2"):
            workers[name], logs[name] = start_worker(
                name, queue_dir, cache_dir, workspace)
            print("  %s pid=%d" % (name, workers[name].pid))

        # -- 3 + 4: sweep, and murder a worker mid-flight --------------
        print()
        print("running a %d-job sweep through the remote backend:"
              % SPEC.job_count())
        executor = RemoteExecutor(
            queue_dir=queue_dir, max_workers=2, poll_interval=0.02,
            timeout=120.0, lease_timeout=LEASE_TIMEOUT,
        )
        scheduler = Scheduler(executor=executor, cache_dir=cache_dir)
        handle = scheduler.start(SPEC)
        finished = 0
        terminal = None
        for event in handle.events():
            if isinstance(event, (JobFinished, CacheHit)):
                finished += 1
                kind = "hit" if isinstance(event, CacheHit) else "sim"
                print("  [%2d/%2d] %s %s"
                      % (finished, SPEC.job_count(), kind,
                         event.job.short_label()))
                if finished == KILL_AFTER and workers["worker-1"].poll() is None:
                    print("  -> SIGKILL worker-1: its lease goes stale and is"
                          " reclaimed after %.1fs" % LEASE_TIMEOUT)
                    workers["worker-1"].kill()
            elif isinstance(event, RunCompleted):
                terminal = event
        result = handle.result()
        print("  done: %d jobs, %d simulated, %d cache hits"
              % (terminal.total, terminal.simulated, terminal.cache_hits))
        assert terminal.total == SPEC.job_count()
        assert terminal.simulated + terminal.cache_hits == terminal.total
        assert result.values  # scored reports exist

        # -- wind the fleet down and show who did what -----------------
        print()
        print("stopping worker-2 with SIGTERM and reading the logs:")
        workers["worker-2"].send_signal(signal.SIGTERM)
        for name, process in workers.items():
            process.wait(timeout=30)
        split = {name: worker_tickets(path) for name, path in logs.items()}
        for name, tickets in sorted(split.items()):
            print("  %s completed %2d ticket(s)" % (name, len(tickets)))
        unique = set(split["worker-1"]) | set(split["worker-2"])
        print("  %d unique tickets across both logs (the killed worker's"
              " lost claim re-ran on the survivor)" % len(unique))

        # -- 5: the measurements outlive the fleet ---------------------
        print()
        print("re-running the same spec over the same cache, fleet gone:")
        warm = Scheduler(cache_dir=cache_dir)  # adopts the 2-shard roster
        warm_result = warm.run(SPEC)
        print("  %d simulations, %d cache hits"
              % (warm.simulations_run, warm.cache.hits))
        assert warm.simulations_run == 0
        assert warm_result.values == result.values
        print()
        print("every measurement ran on the fleet exactly once and is"
              " durable in %s" % cache_dir)
    finally:
        for process in workers.values():
            if process.poll() is None:
                process.kill()
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
