"""Closed-form sweeps: the analytic engine and its curve cache.

The paper's evaluation grids are dominated by uncontended,
deterministic timings — exactly the jobs whose answers have closed
forms.  This example shows the three layers of the analytic batch
engine:

1. ``AnalyticEngine`` answering a whole message-size sweep in one
   vectorized evaluation, bit-identical to the event kernel;
2. ``Scheduler(engine="auto")`` routing a mixed spec — closed forms
   where the planner can prove them exact, the event kernel
   everywhere else — with telemetry saying which engine produced
   each sample;
3. the curve-level cache making a fresh-seed re-sweep near-free:
   seeds are excluded from the curve key because eligible jobs are
   deterministic, so every seed sits on the same curve.

Run with::

    PYTHONPATH=src python examples/analytic_sweep.py
"""

import struct

from repro.analytic import AnalyticEngine, why_ineligible
from repro.core import EvaluationSpec, Scheduler
from repro.core.jobs import MeasurementJob, execute_job

#: Small workloads keep the example interactive.
QUICK = dict(
    tpl_sizes=(1024, 16384),
    global_sum_ints=5_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 20_000}},
)


def direct_sweep() -> None:
    """One curve, one vectorized evaluation, bit-identical answers."""
    sizes = [0, 64, 1_024, 16_384, 65_536]
    jobs = [
        MeasurementJob("sendrecv", "p4", "sun-ethernet", 2, (("nbytes", size),))
        for size in sizes
    ]
    engine = AnalyticEngine()
    values = engine.compute_many(jobs)

    print("sendrecv p4@sun-ethernet/2, %d sizes in one model call:" % len(jobs))
    for job, size in zip(jobs, sizes):
        analytic = values[job]
        kernel = execute_job(job)
        identical = struct.pack("<d", analytic) == struct.pack("<d", kernel)
        print("  nbytes=%-6d  %.9f s  (event kernel agrees bit-for-bit: %s)"
              % (size, analytic, identical))
    print("  curve cache now holds: %r" % engine.curves.stats())

    noisy = MeasurementJob("sendrecv", "p4", "sun-ethernet", 2,
                           (("nbytes", 1024),), noise=0.05)
    print("  a noisy twin is refused: %s" % why_ineligible(noisy))


def mixed_spec() -> None:
    """engine="auto": closed forms where provable, kernel elsewhere."""
    spec = EvaluationSpec(tools=("express", "p4", "pvm"), **QUICK)
    scheduler = Scheduler(engine="auto")
    result = scheduler.run(spec)

    by_engine = {"analytic": 0, "event": 0}
    for record in scheduler.telemetry.values():
        by_engine[record.engine] += 1
    print("\nmixed spec, %d jobs with engine='auto':" % spec.job_count())
    print("  %d closed-form, %d simulated on the event kernel"
          % (by_engine["analytic"], by_engine["event"]))
    for (platform, profile, seed), report in sorted(result.reports().items()):
        print("  %s / %s / seed %d -> best tool: %s"
              % (platform, profile, seed, report.best_tool()))

    # The exported samples are bit-identical to an all-event run —
    # switching engines is purely a performance decision.
    reference = Scheduler(engine="event").run(spec)
    assert result.to_dict()["samples"] == reference.to_dict()["samples"]
    print("  exports match an all-event run exactly")

    # A fresh-seed re-sweep misses the job cache (new seeds are new
    # jobs) but rides the curve cache: zero new vectorized
    # evaluations, because deterministic curves do not depend on the
    # seed.
    before = scheduler.analytic.curves.stats()
    scheduler.run(spec.with_(seeds=(7,)))
    after = scheduler.analytic.curves.stats()
    print("  fresh-seed re-sweep: %d new model evaluations, %d curve hits"
          % (after["evaluations"] - before["evaluations"],
             after["hits"] - before["hits"]))


def main() -> None:
    direct_sweep()
    mixed_spec()


if __name__ == "__main__":
    main()
