"""Regenerate every table and figure of the paper in one run.

    python examples/paper_tables.py              # everything
    python examples/paper_tables.py table3 fig4  # a selection

Prints each artifact in the paper's layout followed by its shape
checks against the published data.
"""

import sys

from repro.bench import available_experiments, run_experiments


def main() -> None:
    requested = sys.argv[1:] or None
    if requested:
        unknown = set(requested) - set(available_experiments())
        if unknown:
            raise SystemExit(
                "unknown experiments: %s\navailable: %s"
                % (", ".join(sorted(unknown)), ", ".join(available_experiments()))
            )
    results = run_experiments(requested)
    failed = [result for result in results if not result.passed]
    print("=" * 72)
    print(
        "%d/%d artifacts reproduce the paper's claims"
        % (len(results) - len(failed), len(results))
    )
    if failed:
        raise SystemExit("failing: %s" % ", ".join(result.exp_id for result in failed))


if __name__ == "__main__":
    main()
