"""NYNET feasibility study: is WAN distributed computing viable?

Reproduces the paper's headline network conclusion (Section 3.2.1):
"it is feasible to build distributed computing systems across an ATM
WAN and their performance is comparable to those based on LANs" — and
the application-level corollary that ATM WAN setups can outperform
Ethernet LANs.

    python examples/wan_computing.py
"""

from repro.core.measurements import measure_application, measure_sendrecv


def main() -> None:
    print("Point-to-point: p4 snd/recv round trip (ms)")
    print("%8s %12s %12s %12s" % ("KB", "ATM LAN", "ATM WAN", "Ethernet"))
    for kb in (1, 4, 16, 64):
        lan = measure_sendrecv("p4", "sun-atm-lan", kb * 1024) * 1e3
        wan = measure_sendrecv("p4", "sun-atm-wan", kb * 1024) * 1e3
        eth = measure_sendrecv("p4", "sun-ethernet", kb * 1024) * 1e3
        print("%8d %12.2f %12.2f %12.2f" % (kb, lan, wan, eth))

    print()
    print("Applications at 4 processors, p4 (seconds)")
    print("%-12s %12s %12s" % ("app", "ATM WAN", "Ethernet"))
    for app in ("jpeg", "fft2d", "montecarlo", "psrs"):
        wan = measure_application(app, "p4", "sun-atm-wan", processors=4)
        eth = measure_application(app, "p4", "sun-ethernet", processors=4)
        print("%-12s %12.3f %12.3f" % (app, wan, eth))

    print()
    print(
        "The WAN columns track the LAN closely for primitives and beat\n"
        "the Ethernet cluster for the applications: distributed computing\n"
        "over a high-speed WAN was already feasible in 1995."
    )


if __name__ == "__main__":
    main()
