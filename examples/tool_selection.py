"""Tool selection for different user classes (weight profiles).

The paper's central point: "the importance and relevance of each
criterion depends on ... the type of computing environment", so the
same measurements rank tools differently for an end user (response
time), an application developer (usability) and a tool developer
(primitive efficiency).  This example measures once and re-weights.

    python examples/tool_selection.py
"""

from repro.core import Evaluator, PRESET_PROFILES


def main() -> None:
    evaluator = Evaluator(
        "sun-ethernet",
        processors=4,
        tpl_sizes=(1024, 16384, 65536),
        global_sum_ints=25_000,
    )
    print("Measuring once on %s ..." % evaluator.platform)

    # Measure with the balanced profile, then re-weight the identical
    # level scores under each preset.
    base_report = evaluator.run(PRESET_PROFILES["balanced"])
    level_scores = {e.tool: e.level_scores for e in base_report.evaluations}

    print()
    header = "%-24s" % "profile"
    tools = sorted(level_scores)
    for tool in tools:
        header += "%12s" % tool
    header += "   best"
    print(header)
    print("-" * len(header))
    for name, profile in PRESET_PROFILES.items():
        overall = {tool: profile.overall(scores) for tool, scores in level_scores.items()}
        row = "%-24s" % name
        for tool in tools:
            row += "%12.3f" % overall[tool]
        row += "   %s" % max(overall, key=lambda t: overall[t])
        print(row)

    print()
    print(
        "Same measurements, different winners are possible: weight factors\n"
        "tailor the evaluation to the user class, exactly as Section 2\n"
        "of the paper prescribes."
    )


if __name__ == "__main__":
    main()
