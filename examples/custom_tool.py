"""Plug a custom tool into the methodology (the paper's future work).

"Our objective is to present an outline for a general multi-level
evaluation methodology, which can be used to evaluate any
parallel/distributed tool" (Section 4).  This example builds a toy
tool — an aggressive zero-copy transport with a naive sequential
broadcast — registers an ADL assessment for it, and evaluates it
against the paper's three.
"""

from repro.core import USABILITY_MATRIX, PS, WS, NS, evaluate_tools
from repro.tools import P4Tool, ToolProfile
from repro.tools.registry import register_tool

#: A hypothetical research tool: leaner than p4 per byte, but with a
#: primitive broadcast and no reduction support.
ZEROCOPY_PROFILE = ToolProfile(
    name="zerocopy",
    display_name="ZeroCopy (hypothetical)",
    transport="tcp",
    send_fixed=0.15e-3,
    recv_fixed=0.12e-3,
    pack_per_byte=0.015e-6,
    unpack_per_byte=0.015e-6,
    broadcast_algorithm="sequential",
    reduce_algorithm=None,
    tcp_window_bytes=32768,
    ack_turnaround=0.3e-3,
)


class ZeroCopyTool(P4Tool):
    """Same direct-TCP structure as p4, different cost profile."""

    default_profile = ZEROCOPY_PROFILE


def register() -> None:
    """Register the runtime and its usability assessment."""
    register_tool("zerocopy", ZeroCopyTool)
    assessment = {
        "programming-models": PS,   # message passing only
        "language-interface": PS,   # C only
        "ease-of-programming": PS,
        "debugging-support": NS,    # research prototype
        "customization": PS,
        "error-handling": NS,
        "run-time-interface": NS,
        "integration": NS,
        "portability": WS,
    }
    for criterion, rating in assessment.items():
        USABILITY_MATRIX[criterion]["zerocopy"] = rating


def main() -> None:
    register()
    print("Evaluating p4, PVM, Express and ZeroCopy on sun-atm-lan ...")
    report = evaluate_tools(
        platform="sun-atm-lan",
        processors=4,
        tools=("p4", "pvm", "express", "zerocopy"),
    )
    print()
    print(report.summary())
    print()
    scores = report.scores()
    print(
        "ZeroCopy wins raw primitives (TPL %.3f vs p4 %.3f) but its"
        % (scores["zerocopy"]["tpl"], scores["p4"]["tpl"])
    )
    print(
        "missing reduction, broadcast algorithm and absent development\n"
        "support cost it at the APL/ADL levels — the multi-level view is\n"
        "exactly what keeps a micro-benchmark winner honest."
    )


if __name__ == "__main__":
    main()
