"""Bench F6: regenerate Figure 6 (four applications on IBM SP-1)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_apl_figure


def test_fig6_sp1_switch(benchmark):
    result = run_once(benchmark, run_apl_figure, "sp1-switch")
    print()
    print(result.render())
    assert_experiment(result)
