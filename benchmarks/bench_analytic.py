"""Analytic-engine benchmark: closed-form sweeps vs. the event kernel.

DoKnowMe-style rule: performance claims need an explicit, repeatable
measurement strategy.  This script is that strategy for the analytic
batch engine — it measures

* an uncontended 100-point message-size sweep (sendrecv, p4 on
  sun-ethernet) through the event kernel and through
  ``AnalyticEngine.compute_many`` (the acceptance bar is a >=20x
  speedup; the equivalence suite separately proves the answers are
  bit-identical), and
* the curve-level cache's warm path: re-answering the same sweep from
  cached curve points vs. evaluating it cold,

and writes them to ``BENCH_analytic.json`` so
``scripts/bench_report.py`` can diff any run against the committed
baseline.  Usage::

    PYTHONPATH=src python benchmarks/bench_analytic.py [--quick] \
        [--output BENCH_analytic.json] [--no-assert]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time

from repro.analytic import AnalyticEngine
from repro.core.jobs import MeasurementJob, execute_job

#: The analytic engine must beat the event kernel by this much on the
#: uncontended 100-point size sweep (whole-grid closed forms are the
#: tentpole claim; anything less means the vectorization regressed to
#: per-job work).
REQUIRED_ANALYTIC_SPEEDUP = 20.0

GRID_POINTS = 100


def sweep_jobs():
    """The benchmark grid: a 100-point uncontended size sweep."""
    sizes = [i * 1_000 for i in range(GRID_POINTS)]
    return [
        MeasurementJob("sendrecv", "p4", "sun-ethernet", 2, (("nbytes", size),))
        for size in sizes
    ]


def _best_of(repeats, func, *args):
    """Minimum wall time over ``repeats`` runs (noise floor, not mean)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_grid(jobs, event_repeats, analytic_repeats):
    """Event kernel vs. analytic engine over the whole sweep.

    Each analytic repeat uses a fresh :class:`AnalyticEngine` (fresh
    curve cache), so the timing prices a genuinely cold curve
    evaluation — the memoized platform/tool model build is shared,
    which is exactly the steady state a scheduler sees.
    """

    def run_event():
        return [execute_job(job) for job in jobs]

    def run_analytic():
        engine = AnalyticEngine()
        values = engine.compute_many(jobs)
        return [values[job] for job in jobs]

    event_wall, event_values = _best_of(event_repeats, run_event)
    analytic_wall, analytic_values = _best_of(analytic_repeats, run_analytic)
    if event_values != analytic_values:
        raise AssertionError(
            "analytic sweep diverged from the event kernel — the "
            "equivalence suite (tests/analytic) should have caught this"
        )
    return {
        "points": len(jobs),
        "event_seconds": event_wall,
        "analytic_seconds": analytic_wall,
        "speedup": event_wall / analytic_wall,
    }


def bench_curve_cache(jobs, repeats):
    """Cold curve evaluation vs. the warm (all-hits) curve-cache path."""
    engine = AnalyticEngine()
    cold_wall, _ = _best_of(1, engine.compute_many, jobs)

    warm_wall, _ = _best_of(repeats, engine.compute_many, jobs)
    stats = engine.curves.stats()
    return {
        "cold_pass_seconds": cold_wall,
        "warm_pass_seconds": warm_wall,
        "warm_speedup": cold_wall / warm_wall,
        "curve_points": stats["points"],
        "evaluations": stats["evaluations"],
    }


def run_benchmarks(quick=False):
    event_repeats = 1 if quick else 3
    analytic_repeats = 3 if quick else 5

    jobs = sweep_jobs()
    metrics = {
        "analytic_grid": bench_grid(jobs, event_repeats, analytic_repeats),
        "curve_cache": bench_curve_cache(jobs, analytic_repeats),
    }
    return {
        "benchmark": "analytic",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "metrics": metrics,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI smoke)")
    parser.add_argument("--output", default="BENCH_analytic.json",
                        help="where to write the metrics "
                             "(default ./BENCH_analytic.json)")
    parser.add_argument("--no-assert", action="store_true",
                        help="record metrics without enforcing the >=%gx "
                             "grid-speedup bar" % REQUIRED_ANALYTIC_SPEEDUP)
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    metrics = report["metrics"]

    grid = metrics["analytic_grid"]
    print("%d-point sweep (event):     %9.3f ms" % (grid["points"], grid["event_seconds"] * 1e3))
    print("%d-point sweep (analytic):  %9.3f ms" % (grid["points"], grid["analytic_seconds"] * 1e3))
    print("analytic grid speedup:      %9.1fx" % grid["speedup"])
    cache = metrics["curve_cache"]
    print("curve pass (cold/warm):     %9.3f / %.3f ms  (%.1fx)"
          % (cache["cold_pass_seconds"] * 1e3,
             cache["warm_pass_seconds"] * 1e3, cache["warm_speedup"]))

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if not args.no_assert and grid["speedup"] < REQUIRED_ANALYTIC_SPEEDUP:
        print("FAIL: analytic grid speedup %.1fx is below the required %.0fx"
              % (grid["speedup"], REQUIRED_ANALYTIC_SPEEDUP))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
