"""Bench cache backends: what persistence and sharding cost.

The disk cache exists so sweeps survive processes; the question is
what that durability costs on the warm path.  One tiny spec runs cold
into a DiskBackend, then re-runs warm three ways — in-memory, disk
(fresh process simulated by a fresh Scheduler + backend over the same
directory, so every hit really parses a JSON file) and a 4-way
sharded disk cache.  All warm paths must stay far cheaper than
re-simulating; disk may cost more than memory, but the point is that
it replaces *simulation*, not a dict lookup.
"""

import time

from repro.core.cache import DiskBackend, ResultCache, ShardedBackend
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_backend_warm_paths(benchmark, tmp_path):
    from conftest import run_once

    spec = EvaluationSpec(**_TINY)
    root = str(tmp_path / "cache")

    cold_scheduler = Scheduler(cache_dir=root)
    _, cold_s = _timed(lambda: cold_scheduler.run(spec))
    assert cold_scheduler.simulations_run == spec.job_count()

    memory = Scheduler()
    memory.run(spec)
    _, memory_s = _timed(lambda: memory.run(spec))

    # Fresh Scheduler + backend over the same directory: the resume
    # path, where every sample is re-read from its JSON entry.
    disk = Scheduler(cache=ResultCache(DiskBackend(root)))
    warm = run_once(benchmark, lambda: _timed(lambda: disk.run(spec)))
    disk_s = warm[1]
    assert disk.simulations_run == 0

    sharded_root = str(tmp_path / "sharded")
    Scheduler(cache_dir=sharded_root, shards=4).run(spec)
    sharded = Scheduler(cache=ResultCache(ShardedBackend.on_disk(sharded_root, 4)))
    _, sharded_s = _timed(lambda: sharded.run(spec))
    assert sharded.simulations_run == 0

    print()
    print("cold (simulate + persist):   %8.1f ms" % (cold_s * 1e3))
    print("warm memory re-run:          %8.1f ms" % (memory_s * 1e3))
    print("warm disk resume:            %8.1f ms" % (disk_s * 1e3))
    print("warm sharded (4) resume:     %8.1f ms" % (sharded_s * 1e3))

    assert disk_s < cold_s / 5.0
    assert sharded_s < cold_s / 5.0


if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-q", "-s"]))
