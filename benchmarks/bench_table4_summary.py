"""Bench T4: regenerate Table 4 (primitive ranking summary)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_table4


def test_table4_summary(benchmark):
    result = run_once(benchmark, run_table4)
    print()
    print(result.render())
    assert_experiment(result)
