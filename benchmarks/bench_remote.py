"""Bench remote: the price of the on-disk job queue.

The remote backend trades function calls for filesystem rendezvous —
every job becomes an enqueue, an ``os.replace`` claim, an outcome
write and a coordinator pickup.  That tax must stay small change next
to simulation time:

* the queue assertion — a full ticket round trip (enqueue -> claim ->
  complete -> take_outcome) prices under ``MAX_ROUNDTRIP_SECONDS``
  per job, and
* the sweep assertion — a cold sweep through ``RemoteExecutor`` + an
  in-process two-worker fleet finishes within
  ``MAX_REMOTE_OVERHEAD`` x the serial wall time (the fleet runs in
  threads, so the GIL keeps this near 1x plus queue tax).

As a script this writes ``BENCH_remote.json`` (same shape as
``BENCH_api.json``) for ``scripts/bench_report.py``::

    PYTHONPATH=src python benchmarks/bench_remote.py \
        [--output BENCH_remote.json] [--no-assert]
"""

import json
import shutil
import sys
import tempfile
import time

from repro.core.cache import ResultCache
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec
from repro.distributed import JobQueue, RemoteExecutor, WorkerPool

#: Queue-tax probe: jobs here are irrelevant, only the paper trail is
#: timed.
_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)

#: Sweep-comparison grid: ~70 ms of simulation per job, so the queue
#: tax is priced against real work, not against spec expansion.
_SWEEP = dict(
    tools=("p4", "express"),
    tpl_sizes=(1_048_576,),
    global_sum_ints=20_000,
    apps=("matmul",),
    app_params={"matmul": {"n": 64}},
)

#: One enqueue->claim->complete->take_outcome cycle must cost at most
#: this many seconds per job (it is a handful of small-file renames;
#: the generous bar absorbs slow CI filesystems).
MAX_ROUNDTRIP_SECONDS = 0.05

#: A remote sweep (thread-fleet, shared disk cache) may cost at most
#: this much over the serial in-process baseline.
MAX_REMOTE_OVERHEAD = 3.0

#: Tickets timed per queue-round-trip measurement.
ROUNDTRIP_TICKETS = 100


def measure_queue_roundtrip(tickets=ROUNDTRIP_TICKETS):
    """Per-ticket wall time of the queue's full paper trail."""
    root = tempfile.mkdtemp(prefix="bench-remote-queue-")
    try:
        queue = JobQueue(root)
        job = EvaluationSpec(**_TINY).jobs()[0]
        start = time.perf_counter()
        for index in range(tickets):
            ticket = "t-%06d" % index
            queue.enqueue(ticket, job)
            claim = queue.claim("bench-worker")
            queue.complete(claim, {"ticket": claim.ticket, "value": 1.0,
                                   "wall_seconds": 0.0, "attempts": 1,
                                   "cache_hit": False, "error": None})
            assert queue.take_outcome(ticket) is not None
        elapsed = time.perf_counter() - start
        return {
            "tickets": tickets,
            "seconds_per_ticket": elapsed / tickets,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _run_serial(spec):
    with Scheduler() as scheduler:
        result = scheduler.run(spec)
    assert scheduler.simulations_run == spec.job_count()
    return result


def _run_remote(spec, root):
    queue = JobQueue(root + "/queue")
    cache = ResultCache.on_disk(root + "/cache", shards=2)
    executor = RemoteExecutor(queue_dir=queue.root, max_workers=2,
                              poll_interval=0.002, timeout=120.0)
    with WorkerPool(queue, cache, workers=2, poll_interval=0.002) as pool:
        with Scheduler(executor=executor) as scheduler:
            result = scheduler.run(spec)
    assert pool.simulated == spec.job_count()  # cold: no hits anywhere
    return result


def measure_remote_vs_serial():
    """Cold sweep wall time: serial in-process vs the remote stack."""
    spec = EvaluationSpec(**_SWEEP)
    _run_serial(spec)  # warm imports so neither side pays them
    start = time.perf_counter()
    serial_result = _run_serial(spec)
    serial_s = time.perf_counter() - start

    root = tempfile.mkdtemp(prefix="bench-remote-sweep-")
    try:
        start = time.perf_counter()
        remote_result = _run_remote(spec, root)
        remote_s = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)

    assert remote_result.values == serial_result.values
    return {
        "jobs": spec.job_count(),
        "serial_run_seconds": serial_s,
        "remote_run_seconds": remote_s,
        "overhead_ratio": remote_s / serial_s,
    }


def test_queue_roundtrip_price():
    metrics = measure_queue_roundtrip()
    print()
    print("queue round trip: %6.2f ms/ticket (%d tickets)"
          % (metrics["seconds_per_ticket"] * 1e3, metrics["tickets"]))
    assert metrics["seconds_per_ticket"] < MAX_ROUNDTRIP_SECONDS


def test_remote_sweep_overhead():
    """The full remote stack vs serial; a miss re-measures once so a
    noisy CI neighbor can't fail a healthy build."""
    metrics = measure_remote_vs_serial()
    if metrics["overhead_ratio"] >= MAX_REMOTE_OVERHEAD:
        metrics = measure_remote_vs_serial()
    print()
    print("serial sweep (cold): %8.1f ms" % (metrics["serial_run_seconds"] * 1e3))
    print("remote sweep (cold): %8.1f ms  (%.3fx)"
          % (metrics["remote_run_seconds"] * 1e3, metrics["overhead_ratio"]))
    assert metrics["overhead_ratio"] < MAX_REMOTE_OVERHEAD


def run_benchmarks():
    import platform as platform_mod

    return {
        "benchmark": "remote",
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "metrics": {
            "queue_roundtrip": measure_queue_roundtrip(),
            "remote_sweep": measure_remote_vs_serial(),
        },
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_remote.json",
                        help="where to write the metrics (default ./BENCH_remote.json)")
    parser.add_argument("--no-assert", action="store_true",
                        help="record metrics without enforcing the "
                             "round-trip and overhead bars")
    args = parser.parse_args(argv)

    report = run_benchmarks()
    roundtrip = report["metrics"]["queue_roundtrip"]
    sweep = report["metrics"]["remote_sweep"]
    print("queue round trip:    %8.2f ms/ticket"
          % (roundtrip["seconds_per_ticket"] * 1e3))
    print("serial sweep (cold): %8.1f ms" % (sweep["serial_run_seconds"] * 1e3))
    print("remote sweep (cold): %8.1f ms" % (sweep["remote_run_seconds"] * 1e3))
    print("remote overhead:     %8.3fx" % sweep["overhead_ratio"])

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if args.no_assert:
        return 0
    failures = []
    if roundtrip["seconds_per_ticket"] >= MAX_ROUNDTRIP_SECONDS:
        failures.append("queue round trip %.2f ms/ticket exceeds %.0f ms"
                        % (roundtrip["seconds_per_ticket"] * 1e3,
                           MAX_ROUNDTRIP_SECONDS * 1e3))
    if sweep["overhead_ratio"] >= MAX_REMOTE_OVERHEAD:
        failures.append("remote overhead %.3fx exceeds the %.1fx bar"
                        % (sweep["overhead_ratio"], MAX_REMOTE_OVERHEAD))
    for failure in failures:
        print("FAIL: %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
