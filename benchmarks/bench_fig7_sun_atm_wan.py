"""Bench F7: regenerate Figure 7 (applications on SUN/ATM WAN, NYNET).

Also checks the paper's WAN feasibility conclusion: the NYNET curves
stay close to (and for communication-heavy apps beat) Ethernet.
"""

from conftest import assert_experiment, run_once

from repro.bench.compare import check_ratio_band, failures
from repro.bench.experiments import run_apl_figure
from repro.core.measurements import measure_application


def test_fig7_sun_atm_wan(benchmark):
    result = run_once(benchmark, run_apl_figure, "sun-atm-wan")
    print()
    print(result.render())
    assert_experiment(result)


def test_wan_beats_ethernet_for_jpeg(benchmark):
    """'Distributed computing ... across wide area networks ... can
    outperform LANs if higher speed network technology such as ATM is
    used' (Section 3.3) — JPEG at 4 processors."""

    def run():
        wan = measure_application("jpeg", "p4", "sun-atm-wan", processors=4)
        eth = measure_application("jpeg", "p4", "sun-ethernet", processors=4)
        return wan, eth

    wan, eth = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\njpeg p4 4P: atm-wan=%.3fs ethernet=%.3fs" % (wan, eth))
    # The WAN hosts (IPX) are also faster than the Ethernet hosts
    # (ELC), as in the paper; the claim is about the combination.
    check = check_ratio_band("fig7/wan-vs-ethernet-jpeg", eth, wan, low=1.0)
    assert not failures([check]), repr(check)
