"""Bench T1: regenerate Table 1 (primitive name map)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_table1


def test_table1_primitives(benchmark):
    result = run_once(benchmark, run_table1)
    print()
    print(result.render())
    assert_experiment(result)
