"""Bench F2: regenerate Figure 2 (broadcast, Ethernet + ATM WAN)."""

import pytest
from conftest import assert_experiment, run_once

from repro.bench.experiments import run_fig2_broadcast


@pytest.mark.parametrize("network", ["ethernet", "atm"])
def test_fig2_broadcast(benchmark, network):
    result = run_once(benchmark, run_fig2_broadcast, network)
    print()
    print(result.render())
    assert_experiment(result)
