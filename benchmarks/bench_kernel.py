"""Simulation-kernel benchmark: the repo's tracked speed trajectory.

DoKnowMe-style rule: performance claims need an explicit, repeatable
measurement strategy.  This script *is* that strategy for the hot
path — it measures

* raw kernel event throughput (timeout schedule/dispatch cycles/sec),
* per-medium wall-clock time to simulate an uncontended 1 MB transfer,
* the bulk fast path against the frozen per-frame reference
  implementation (the acceptance bar is a >=5x speedup), and
* process-pool amortization: a measurement pass on a persistent pool
  vs. paying worker startup every pass,

and writes them to ``BENCH_kernel.json`` so
``scripts/bench_report.py`` can diff any run against the committed
baseline.  Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--quick] \
        [--output BENCH_kernel.json] [--no-assert]
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time

from repro.core.scheduler import ProcessPoolExecutor, Scheduler
from repro.core.spec import EvaluationSpec
from repro.net import AllnodeSwitch, AtmLan, AtmWan, Ethernet, FddiRing
from repro.sim import Environment

#: The bulk fast path must beat the per-frame reference by this much
#: on an uncontended 1 MB Ethernet transfer (the ~700-frame case).
REQUIRED_FASTPATH_SPEEDUP = 5.0

MEDIA = {
    "ethernet": Ethernet,
    "fddi": FddiRing,
    "atm-lan": AtmLan,
    "atm-wan": AtmWan,
    "allnode": AllnodeSwitch,
}

_POOL_SPEC = dict(
    tools=("p4",),
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def per_frame_reference(net, src, dst, nbytes):
    """Frozen pre-fast-path Ethernet loop: one claim + timeout(s) per
    frame.  The baseline the tentpole is measured against."""
    net.validate_endpoints(src, dst)
    start = net.env.now
    wire_total = 0
    busy_total = 0.0
    for payload in net.frame_format.frame_payloads(nbytes):
        with net._medium.request() as claim:
            yield claim
            frame_time = net.frame_seconds(payload)
            yield net.env.timeout(frame_time)
        wire_total += net.frame_format.wire_bytes(payload)
        busy_total += frame_time
    yield net.env.timeout(net.propagation_seconds)
    net._record(src, dst, nbytes, wire_total, busy_total)
    return net.env.now - start


def _best_of(repeats, func, *args):
    """Minimum wall time over ``repeats`` runs (noise floor, not mean)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_event_throughput(events):
    """Schedule-and-dispatch cycles per second through the run loop."""

    def ticker(env, count):
        for _ in range(count):
            yield env.timeout(1.0)

    def run():
        env = Environment()
        env.process(ticker(env, events))
        env.run()

    wall, _ = _best_of(3, run)
    return events / wall


def _run_transfer(factory, nbytes):
    env = Environment()
    net = factory(env, 2)
    process = env.process(net.transfer(0, 1, nbytes))
    env.run(until=process)


def bench_media(nbytes, repeats):
    """Wall seconds (and simulated MB per wall second) per medium."""
    wall = {}
    for name, factory in MEDIA.items():
        wall[name], _ = _best_of(repeats, _run_transfer, factory, nbytes)
    return wall


def bench_fastpath_speedup(nbytes, repeats):
    """Uncontended 1 MB Ethernet: fast path vs. per-frame reference."""

    def run_reference():
        env = Environment()
        net = Ethernet(env, 2)
        process = env.process(per_frame_reference(net, 0, 1, nbytes))
        env.run(until=process)

    slow, _ = _best_of(repeats, run_reference)
    fast, _ = _best_of(repeats, _run_transfer, Ethernet, nbytes)
    return {"per_frame_seconds": slow, "fast_path_seconds": fast,
            "speedup": slow / fast}


def bench_pool_amortization(passes):
    """Cost of a measurement pass with and without pool reuse.

    Every pass simulates the same tiny spec on a cold cache; the
    "fresh" timing shuts the pool down between passes (the pre-PR
    behavior of one pool per ``run``), the "reused" timing keeps one
    pool alive across all of them.
    """
    spec = EvaluationSpec(**_POOL_SPEC)

    fresh_total = 0.0
    for _ in range(passes):
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=2) as executor:
            Scheduler(executor=executor).run(spec)
        fresh_total += time.perf_counter() - start

    reused_total = 0.0
    with ProcessPoolExecutor(max_workers=2) as executor:
        executor.run(spec.jobs()[:1])  # spawn workers outside the timing
        for _ in range(passes):
            start = time.perf_counter()
            Scheduler(executor=executor).run(spec)
            reused_total += time.perf_counter() - start

    return {
        "passes": passes,
        "fresh_pool_pass_seconds": fresh_total / passes,
        "reused_pool_pass_seconds": reused_total / passes,
        "amortization_ratio": fresh_total / reused_total,
    }


def run_benchmarks(quick=False):
    events = 50_000 if quick else 200_000
    nbytes = 1_000_000
    repeats = 3 if quick else 5
    passes = 2 if quick else 4

    metrics = {
        "kernel_events_per_sec": bench_event_throughput(events),
        "transfer_wall_seconds_1mb": bench_media(nbytes, repeats),
        "ethernet_fastpath": bench_fastpath_speedup(nbytes, repeats),
        "pool": bench_pool_amortization(passes),
    }
    return {
        "benchmark": "kernel",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "metrics": metrics,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller event counts / fewer repeats (CI smoke)")
    parser.add_argument("--output", default="BENCH_kernel.json",
                        help="where to write the metrics (default ./BENCH_kernel.json)")
    parser.add_argument("--no-assert", action="store_true",
                        help="record metrics without enforcing the >=%gx "
                             "fast-path bar" % REQUIRED_FASTPATH_SPEEDUP)
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    metrics = report["metrics"]

    print("kernel events/sec:          %12.0f" % metrics["kernel_events_per_sec"])
    for name, wall in sorted(metrics["transfer_wall_seconds_1mb"].items()):
        print("1 MB transfer (%-8s):    %9.3f ms" % (name, wall * 1e3))
    fastpath = metrics["ethernet_fastpath"]
    print("ethernet per-frame path:    %9.3f ms" % (fastpath["per_frame_seconds"] * 1e3))
    print("ethernet fast path:         %9.3f ms" % (fastpath["fast_path_seconds"] * 1e3))
    print("fast-path speedup:          %9.1fx" % fastpath["speedup"])
    pool = metrics["pool"]
    print("pool pass (fresh/reused):   %9.3f / %.3f ms  (%.1fx)"
          % (pool["fresh_pool_pass_seconds"] * 1e3,
             pool["reused_pool_pass_seconds"] * 1e3,
             pool["amortization_ratio"]))

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if not args.no_assert and fastpath["speedup"] < REQUIRED_FASTPATH_SPEEDUP:
        print("FAIL: fast-path speedup %.1fx is below the required %.0fx"
              % (fastpath["speedup"], REQUIRED_FASTPATH_SPEEDUP))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
