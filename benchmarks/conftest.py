"""Shared helpers for the benchmark suite.

Every benchmark runs its experiment exactly once (simulated time is
deterministic; repeating adds nothing) and asserts the experiment's
shape checks against the paper.
"""

import pytest

from repro.bench.compare import failures


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single round/iteration."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_experiment(result):
    """Fail with a readable report if any shape check failed."""
    failed = failures(result.checks)
    if failed:
        details = "\n".join(repr(check) for check in failed)
        pytest.fail(
            "%s: %d/%d checks failed:\n%s"
            % (result.exp_id, len(failed), len(result.checks), details)
        )
