"""Noise-model benchmark: what the seeded jitter draws cost and buy.

The --noise knob must be cheap enough to leave on for any sweep that
wants honest error bars, and it must actually buy measurable spread.
This script records both sides:

* overhead — wall-clock time of an identical measurement pass with
  noise off vs. noise on (the draws ride existing events, so the
  ratio should sit near 1.0);
* spread — the relative sample stddev that a multi-seed contended
  Ethernet ring and an FDDI ring actually exhibit at noise=1.0
  (deterministic runs pin 0.0 by construction);
* fast-path preservation — an uncontended noisy 1 MB Ethernet
  transfer must stay on the coalesced bulk path (no seeded draw can
  occur without contention), so its wall time matches the
  deterministic one.

Usage::

    PYTHONPATH=src python benchmarks/bench_noise.py [--quick] \
        [--output BENCH_noise.json]
"""

from __future__ import annotations

import argparse
import json
import math
import platform as platform_mod
import sys
import time

from repro.core.measurements import measure_ring
from repro.net import Ethernet
from repro.sim import Environment, RandomStreams


def _best_of(repeats, func, *args):
    """Minimum wall time over ``repeats`` runs (noise floor, not mean)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _ring_pass(platform_name, seeds, noise):
    return [
        measure_ring("p4", platform_name, 16_384, processors=4, seed=seed, noise=noise)
        for seed in seeds
    ]


def bench_overhead(seeds, repeats):
    """Same measurement pass, noise off vs on: the draw tax."""
    base, _ = _best_of(repeats, _ring_pass, "sun-ethernet", seeds, 0.0)
    noisy, _ = _best_of(repeats, _ring_pass, "sun-ethernet", seeds, 1.0)
    return {
        "deterministic_pass_seconds": base,
        "noisy_pass_seconds": noisy,
        # Higher is better: 1.0 = free, below 1 = noise costs time.
        "noise_speed_ratio": base / noisy if noisy > 0 else float("nan"),
    }


def bench_spread(seeds):
    """Relative stddev of the simulated ring time across seeds."""
    spread = {}
    for name in ("sun-ethernet", "alpha-fddi"):
        samples = _ring_pass(name, seeds, 1.0)
        n = len(samples)
        mean = math.fsum(samples) / n
        variance = math.fsum((s - mean) ** 2 for s in samples) / (n - 1)
        spread[name] = {
            "seeds": n,
            "mean_simulated_seconds": mean,
            "relative_stddev": math.sqrt(variance) / mean,
        }
    return spread


def bench_fastpath_preserved(repeats):
    """Uncontended noisy Ethernet must still coalesce (no draws)."""

    def run(noisy):
        env = Environment()
        net = Ethernet(env, 2)
        if noisy:
            net.enable_noise(RandomStreams(0))
        process = env.process(net.transfer(0, 1, 1_000_000))
        env.run(until=process)
        return env.now

    base, base_now = _best_of(repeats, run, False)
    noisy, noisy_now = _best_of(repeats, run, True)
    return {
        "deterministic_wall_seconds": base,
        "noisy_wall_seconds": noisy,
        "noisy_wall_ratio": base / noisy if noisy > 0 else float("nan"),
        "simulated_times_identical": base_now == noisy_now,
    }


def run_benchmarks(quick=False):
    seeds = tuple(range(3 if quick else 8))
    repeats = 2 if quick else 4
    metrics = {
        "overhead": bench_overhead(seeds, repeats),
        "spread_at_noise_1": bench_spread(seeds),
        "uncontended_fastpath": bench_fastpath_preserved(repeats),
    }
    return {
        "benchmark": "noise",
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "metrics": metrics,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer seeds / repeats (CI smoke)")
    parser.add_argument("--output", default="BENCH_noise.json",
                        help="where to write the metrics (default ./BENCH_noise.json)")
    args = parser.parse_args(argv)

    report = run_benchmarks(quick=args.quick)
    metrics = report["metrics"]

    overhead = metrics["overhead"]
    print("measurement pass (det):     %9.3f ms" % (overhead["deterministic_pass_seconds"] * 1e3))
    print("measurement pass (noisy):   %9.3f ms" % (overhead["noisy_pass_seconds"] * 1e3))
    print("noise speed ratio:          %9.2fx" % overhead["noise_speed_ratio"])
    for name, cell in sorted(metrics["spread_at_noise_1"].items()):
        print("spread %-13s:       %8.3f%% rel. stddev over %d seeds"
              % (name, cell["relative_stddev"] * 100, cell["seeds"]))
    fastpath = metrics["uncontended_fastpath"]
    print("uncontended noisy 1 MB:     %9.3f ms (det %9.3f ms, sim times %s)"
          % (fastpath["noisy_wall_seconds"] * 1e3,
             fastpath["deterministic_wall_seconds"] * 1e3,
             "identical" if fastpath["simulated_times_identical"] else "DIVERGED"))

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if not fastpath["simulated_times_identical"]:
        print("FAIL: noise perturbed an uncontended transfer (the fast "
              "path must stay deterministic without contention)")
        return 1
    if all(cell["relative_stddev"] == 0.0
           for cell in metrics["spread_at_noise_1"].values()):
        print("FAIL: noise=1.0 produced zero spread across seeds")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
