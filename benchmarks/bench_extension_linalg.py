"""Extension bench: the Table 2 numerical apps beyond the figures.

Matrix multiplication stresses broadcast bandwidth; LU stresses
per-message latency (n shrinking broadcasts).  Together they separate
the tools along both axes, complementing Figures 5-8.
"""

from repro.core.measurements import measure_application


def run_linalg(platform="alpha-fddi", processors=4):
    times = {}
    for app, params in (("matmul", {"n": 192}), ("lu", {"n": 96})):
        times[app] = {
            tool: measure_application(
                app, tool, platform, processors=processors, **params
            )
            for tool in ("p4", "pvm", "express")
        }
    return times


def test_extension_linalg(benchmark):
    times = benchmark.pedantic(run_linalg, rounds=1, iterations=1)
    print()
    for app, by_tool in times.items():
        print(
            "%-8s " % app
            + "  ".join("%s=%.4fs" % item for item in sorted(by_tool.items()))
        )
    # Bandwidth-bound matmul: p4 leads but the spread is modest.
    assert times["matmul"]["p4"] <= min(times["matmul"].values()) * 1.001
    # Latency-bound LU: PVM's daemon route is heavily punished.
    assert times["lu"]["pvm"] > times["lu"]["p4"] * 1.5
