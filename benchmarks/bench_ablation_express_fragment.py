"""Ablation: Express fragment size and handshake cost.

Express's Table 3 deficit is structural: a stop-and-wait handshake
per internal fragment.  Growing the fragment (fewer handshakes) or
dropping the handshake latency should recover most of the gap to p4.
"""

from repro.core.measurements import measure_sendrecv
from repro.tools.profiles import EXPRESS_PROFILE


def run_ablation(nbytes=65536):
    stock = measure_sendrecv("express", "sun-ethernet", nbytes)
    big_fragment = measure_sendrecv(
        "express", "sun-ethernet", nbytes,
        profile=EXPRESS_PROFILE.replace(fragment_bytes=8192),
    )
    no_handshake = measure_sendrecv(
        "express", "sun-ethernet", nbytes,
        profile=EXPRESS_PROFILE.replace(handshake_seconds=0.0),
    )
    return stock, big_fragment, no_handshake


def test_express_fragment_ablation(benchmark):
    stock, big_fragment, no_handshake = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print(
        "\nexpress snd/recv 64KB Ethernet: stock=%.1fms 8KB-fragments=%.1fms "
        "no-handshake=%.1fms" % (stock * 1e3, big_fragment * 1e3, no_handshake * 1e3)
    )
    assert big_fragment < stock
    assert no_handshake < stock
    # Handshakes are the dominant structural cost at 1 KB fragments.
    assert (stock - no_handshake) > 0.25 * stock
