"""Bench T5: regenerate the Section 3.3.1 usability matrix."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_table5


def test_table5_usability(benchmark):
    result = run_once(benchmark, run_table5)
    print()
    print(result.render())
    assert_experiment(result)
