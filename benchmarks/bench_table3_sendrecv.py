"""Bench T3: regenerate Table 3 (snd/recv round trips, all networks).

The one artifact the paper publishes as exact numbers: every cell must
land within the calibration factor, and the orderings/crossovers the
text calls out must hold.
"""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_table3


def test_table3_sendrecv(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(result.render())
    assert_experiment(result)
