"""Ablation: the TCP window behind p4's Ethernet curve.

Table 3 shows p4's Ethernet times jumping super-linearly past 4-8 KB —
the 1995 SunOS socket-buffer window.  Widening the modelled window
should flatten the curve; shrinking it should steepen it.
"""

from repro.core.measurements import measure_sendrecv
from repro.tools.profiles import P4_PROFILE


def run_ablation(nbytes=65536):
    results = {}
    for window in (4096, 8192, 65536):
        profile = P4_PROFILE.replace(tcp_window_bytes=window)
        results[window] = measure_sendrecv(
            "p4", "sun-ethernet", nbytes, profile=profile
        )
    return results


def test_tcp_window_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(
        "\np4 snd/recv 64KB Ethernet by window: "
        + "  ".join("%dB=%.1fms" % (w, t * 1e3) for w, t in sorted(results.items()))
    )
    assert results[65536] < results[8192] < results[4096]
