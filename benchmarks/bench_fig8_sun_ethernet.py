"""Bench F8: regenerate Figure 8 (four applications on SUN/Ethernet)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_apl_figure


def test_fig8_sun_ethernet(benchmark):
    result = run_once(benchmark, run_apl_figure, "sun-ethernet")
    print()
    print(result.render())
    assert_experiment(result)
