"""Extension: push a fourth tool (MPI) through the same methodology.

The paper's closing direction — the framework "can be used to
evaluate any parallel/distributed tool".  An MPICH-style MPI model
(direct TCP like p4, slightly richer semantics) joins the original
three and the whole three-level evaluation re-runs unchanged.
"""

from repro.core.evaluation import evaluate_tools

_TINY_APPS = {
    "jpeg": {"height": 128, "width": 128},
    "fft2d": {"size": 64},
    "montecarlo": {"samples": 100_000},
    "psrs": {"keys": 25_000},
}


def run_four_tool_evaluation():
    return evaluate_tools(
        platform="sun-ethernet",
        processors=4,
        tools=("express", "p4", "pvm", "mpi"),
        tpl_sizes=(1024, 16384, 65536),
        global_sum_ints=10_000,
        app_params=_TINY_APPS,
    )


def test_mpi_extension_evaluation(benchmark):
    report = benchmark.pedantic(run_four_tool_evaluation, rounds=1, iterations=1)
    print()
    print(report.summary())
    scores = report.scores()
    # The methodology accommodates the fourth tool without changes.
    assert set(scores) == {"express", "p4", "pvm", "mpi"}
    # MPI behaves like a slightly heavier p4: between p4 and the rest
    # at the tool performance level.
    assert scores["p4"]["tpl"] >= scores["mpi"]["tpl"]
    assert scores["mpi"]["tpl"] > scores["pvm"]["tpl"]
    assert scores["mpi"]["tpl"] > scores["express"]["tpl"]
