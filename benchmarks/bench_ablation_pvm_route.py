"""Ablation: PVM's daemon default route vs a direct route.

PVM 3.3 offered PvmRouteDirect, which bypasses the daemons and talks
task-to-task.  Zeroing the daemon constants in the profile models it;
the gap quantifies how much of PVM's Table 3 deficit the default
route costs — and shows the congestion-retransmit penalty (the ring
behaviour) is a daemon-path effect.
"""

from repro.core.measurements import measure_ring, measure_sendrecv
from repro.tools.profiles import PVM_PROFILE

DIRECT = PVM_PROFILE.replace(
    daemon_ipc_fixed=0.0,
    daemon_ipc_per_byte=0.0,
    daemon_copy_per_byte=0.0,
    daemon_ack_stall=0.0,
    daemon_retransmit_stall=0.0,
)


def run_ablation(nbytes=65536):
    default_rtt = measure_sendrecv("pvm", "sun-ethernet", nbytes)
    direct_rtt = measure_sendrecv("pvm", "sun-ethernet", nbytes, profile=DIRECT)
    default_ring = measure_ring("pvm", "sun-ethernet", nbytes)
    direct_ring = measure_ring("pvm", "sun-ethernet", nbytes, profile=DIRECT)
    return default_rtt, direct_rtt, default_ring, direct_ring


def test_pvm_route_ablation(benchmark):
    default_rtt, direct_rtt, default_ring, direct_ring = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print(
        "\nsnd/recv 64KB: daemon=%.1fms direct=%.1fms | ring 64KB: daemon=%.1fms direct=%.1fms"
        % (default_rtt * 1e3, direct_rtt * 1e3, default_ring * 1e3, direct_ring * 1e3)
    )
    # The daemon route must cost measurably on both patterns.
    assert direct_rtt < default_rtt * 0.8
    assert direct_ring < default_ring * 0.85
