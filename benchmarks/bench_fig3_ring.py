"""Bench F3: regenerate Figure 3 (ring, Ethernet + ATM WAN).

The headline emergent behaviour: Express overtakes PVM under the
bidirectional ring load on Ethernet even though PVM wins plain
send/recv.
"""

import pytest
from conftest import assert_experiment, run_once

from repro.bench.experiments import run_fig3_ring


@pytest.mark.parametrize("network", ["ethernet", "atm"])
def test_fig3_ring(benchmark, network):
    result = run_once(benchmark, run_fig3_ring, network)
    print()
    print(result.render())
    assert_experiment(result)
