"""Bench F5: regenerate Figure 5 (four applications on ALPHA/FDDI)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_apl_figure


def test_fig5_alpha_fddi(benchmark):
    result = run_once(benchmark, run_apl_figure, "alpha-fddi")
    print()
    print(result.render())
    assert_experiment(result)
