"""Ablation: broadcast algorithm (binomial tree vs sequential loop).

DESIGN.md calls out the broadcast algorithm as the structural reason
p4 wins Figure 2 ("broadcast/multicast performance greatly depends on
the algorithm used for its implementation", Section 3.2.2).  Swap
p4's binomial tree for a sequential loop and measure the difference
on a switched network, where tree parallelism actually helps.
"""

from repro.core.measurements import measure_broadcast
from repro.tools.profiles import P4_PROFILE


def run_ablation(processors=8, nbytes=65536):
    tree = measure_broadcast(
        "p4", "sun-atm-lan", nbytes, processors=processors,
        profile=P4_PROFILE,
    )
    sequential = measure_broadcast(
        "p4", "sun-atm-lan", nbytes, processors=processors,
        profile=P4_PROFILE.replace(broadcast_algorithm="sequential"),
    )
    return tree, sequential


def test_broadcast_algorithm_ablation(benchmark):
    tree, sequential = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(
        "\nbroadcast 64KB, 8 nodes, ATM LAN: binomial=%.2fms sequential=%.2fms (x%.2f)"
        % (tree * 1e3, sequential * 1e3, sequential / tree)
    )
    # On a switched network the tree must beat the sequential loop.
    assert tree < sequential
    # With 8 nodes the tree has depth 3 vs 7 sequential sends.
    assert sequential / tree > 1.5
