"""Bench API: scheduler overhead vs. the direct evaluator path, and
the price of streaming.

The plan API adds spec expansion, cache bookkeeping and result
reconstruction around the same simulations; the streaming API (PR 5)
adds a worker thread, per-job event records and progress counters on
top.  Both layers must stay small change next to simulation time:

* the classic assertion — a warm ``Scheduler.run`` re-run (pure
  scheduling, zero simulations) is at least 5x faster than a cold
  one, and
* the streaming assertion — ``start()`` + a fully consumed event
  stream prices within 5% of a blocking ``run()`` on a cold sweep.

Timings are best-of-``REPEATS`` to shrug off scheduler noise.  As a
script this writes ``BENCH_api.json`` (sibling of
``BENCH_kernel.json``, same shape) for ``scripts/bench_report.py``::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py \
        [--output BENCH_api.json] [--no-assert]
"""

import json
import sys
import time

from repro.core.evaluation import Evaluator
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)

#: Streaming (start + events + result) may cost at most this much
#: over blocking run() on a cold sweep.
MAX_STREAMING_OVERHEAD = 1.05

#: Cold timing repetitions (best-of, to shrug off scheduler noise).
REPEATS = 5


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _best_of(repeats, func):
    return min(_timed(func)[1] for _ in range(repeats))


def _run_blocking(spec):
    with Scheduler() as scheduler:
        return scheduler.run(spec)


def _run_streaming(spec):
    with Scheduler() as scheduler:
        handle = scheduler.start(spec)
        events = sum(1 for _ in handle.events())
        result = handle.result()
        assert events == 2 * spec.job_count() + 1
        return result


def measure_streaming_overhead(repeats=REPEATS):
    """Best-of cold timings: blocking run() vs start()+events+result()."""
    spec = EvaluationSpec(**_TINY)
    # Interleaved warm-up so neither variant benefits from import costs.
    _run_blocking(spec)
    blocking_s = _best_of(repeats, lambda: _run_blocking(spec))
    streaming_s = _best_of(repeats, lambda: _run_streaming(spec))
    return {
        "blocking_run_seconds": blocking_s,
        "streaming_run_seconds": streaming_s,
        "overhead_ratio": streaming_s / blocking_s,
    }


def test_scheduler_overhead(benchmark):
    from conftest import run_once

    _, direct_s = _timed(lambda: Evaluator("sun-ethernet", **_TINY).run())

    spec = EvaluationSpec(**_TINY)
    scheduler = Scheduler()
    _, cold_s = _timed(lambda: scheduler.run(spec))
    # The benchmarked quantity: a fully cached re-run of the spec.
    warm = run_once(benchmark, lambda: _timed(lambda: scheduler.run(spec)))
    warm_s = warm[1]

    print()
    print("direct Evaluator.run (cold): %8.1f ms" % (direct_s * 1e3))
    print("Scheduler.run        (cold): %8.1f ms" % (cold_s * 1e3))
    print("Scheduler.run        (warm): %8.1f ms  <- scheduling overhead" % (warm_s * 1e3))

    assert scheduler.simulations_run == spec.job_count()
    assert warm_s < cold_s / 5.0


def test_streaming_overhead():
    """start() + a fully drained event stream must price within
    MAX_STREAMING_OVERHEAD of blocking run() on a cold sweep.

    Wall-clock ratios on shared CI hardware are noisy even as
    best-of-N minima, so a miss re-measures once with doubled repeats
    before failing — a real regression fails twice, a neighbor burst
    does not.
    """
    metrics = measure_streaming_overhead()
    if metrics["overhead_ratio"] >= MAX_STREAMING_OVERHEAD:
        metrics = measure_streaming_overhead(repeats=2 * REPEATS)

    print()
    print("blocking  run (cold, best of %d): %8.1f ms"
          % (REPEATS, metrics["blocking_run_seconds"] * 1e3))
    print("streaming run (cold, best of %d): %8.1f ms  (%.3fx)"
          % (REPEATS, metrics["streaming_run_seconds"] * 1e3,
             metrics["overhead_ratio"]))

    assert metrics["overhead_ratio"] < MAX_STREAMING_OVERHEAD


def run_benchmarks():
    import platform as platform_mod

    return {
        "benchmark": "api",
        "python": sys.version.split()[0],
        "machine": platform_mod.machine(),
        "metrics": {"streaming": measure_streaming_overhead()},
    }


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_api.json",
                        help="where to write the metrics (default ./BENCH_api.json)")
    # argparse re-interpolates help strings, so the literal percent
    # sign must still be doubled *after* our own formatting.
    parser.add_argument("--no-assert", action="store_true",
                        help="record metrics without enforcing the <%g%%%% "
                             "streaming-overhead bar"
                             % ((MAX_STREAMING_OVERHEAD - 1) * 100))
    args = parser.parse_args(argv)

    report = run_benchmarks()
    streaming = report["metrics"]["streaming"]
    print("blocking  run (cold): %8.1f ms" % (streaming["blocking_run_seconds"] * 1e3))
    print("streaming run (cold): %8.1f ms" % (streaming["streaming_run_seconds"] * 1e3))
    print("streaming overhead:   %8.3fx" % streaming["overhead_ratio"])

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if not args.no_assert and streaming["overhead_ratio"] >= MAX_STREAMING_OVERHEAD:
        print("FAIL: streaming overhead %.3fx exceeds the %.2fx bar"
              % (streaming["overhead_ratio"], MAX_STREAMING_OVERHEAD))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
