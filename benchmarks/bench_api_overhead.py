"""Bench API: scheduler overhead vs. the direct evaluator path.

The plan API adds spec expansion, cache bookkeeping and result
reconstruction around the same simulations.  This benchmark records
three timings on one tiny configuration:

* the classic ``Evaluator.run()`` shim (cold: simulates everything),
* a cold ``Scheduler.run(spec)`` (should cost the same), and
* a warm ``Scheduler.run(spec)`` re-run (pure overhead: zero
  simulations, so this *is* the scheduling layer's price).

The assertion is deliberately loose — the warm path must be at least
5x faster than the cold path, i.e. overhead is small change next to
simulation time.
"""

import time

from repro.core.evaluation import Evaluator
from repro.core.scheduler import Scheduler
from repro.core.spec import EvaluationSpec

_TINY = dict(
    tpl_sizes=(1024,),
    global_sum_ints=2_000,
    apps=("montecarlo",),
    app_params={"montecarlo": {"samples": 5_000}},
)


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def test_scheduler_overhead(benchmark):
    from conftest import run_once

    _, direct_s = _timed(lambda: Evaluator("sun-ethernet", **_TINY).run())

    spec = EvaluationSpec(**_TINY)
    scheduler = Scheduler()
    _, cold_s = _timed(lambda: scheduler.run(spec))
    # The benchmarked quantity: a fully cached re-run of the spec.
    warm = run_once(benchmark, lambda: _timed(lambda: scheduler.run(spec)))
    warm_s = warm[1]

    print()
    print("direct Evaluator.run (cold): %8.1f ms" % (direct_s * 1e3))
    print("Scheduler.run        (cold): %8.1f ms" % (cold_s * 1e3))
    print("Scheduler.run        (warm): %8.1f ms  <- scheduling overhead" % (warm_s * 1e3))

    assert scheduler.simulations_run == spec.job_count()
    assert warm_s < cold_s / 5.0


if __name__ == "__main__":
    import sys

    import pytest

    sys.exit(pytest.main([__file__, "-q", "-s"]))
