"""Bench F4: regenerate Figure 4 (global vector summation)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_fig4_globalsum


def test_fig4_globalsum(benchmark):
    result = run_once(benchmark, run_fig4_globalsum)
    print()
    print(result.render())
    assert_experiment(result)
