"""Bench T2: regenerate Table 2 (the SU PDABS suite)."""

from conftest import assert_experiment, run_once

from repro.bench.experiments import run_table2


def test_table2_suite(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.render())
    assert_experiment(result)
